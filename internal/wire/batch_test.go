package wire_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"mralloc/internal/wire"
)

// collect reads every frame from one encoded stream, copying each (the
// reader reuses its buffer).
func collect(t *testing.T, stream []byte, max uint64) ([][]byte, error) {
	t.Helper()
	fr := wire.NewFrameReader(bytes.NewReader(stream), max)
	var out [][]byte
	for {
		f, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, append([]byte(nil), f...))
	}
}

func TestFrameReaderMixedSinglesAndBatches(t *testing.T) {
	payloads := [][]byte{
		[]byte("a"), []byte("bb"), []byte("ccc"), []byte("dddd"), []byte("e"),
	}
	// Stream: single, batch(bb ccc), single, then a batch of one... a
	// batch envelope requires ≥2 frames only by writer convention; the
	// reader accepts one-frame envelopes, so include one.
	var body []byte
	body = wire.AppendFrame(body, payloads[1])
	body = wire.AppendFrame(body, payloads[2])
	var stream []byte
	stream = wire.AppendFrame(stream, payloads[0])
	stream = wire.AppendBatch(stream, body)
	stream = wire.AppendFrame(stream, payloads[3])
	stream = wire.AppendBatch(stream, wire.AppendFrame(nil, payloads[4]))

	got, err := collect(t, stream, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("read %d frames, want %d", len(got), len(payloads))
	}
	for i, want := range payloads {
		if !bytes.Equal(got[i], want) {
			t.Errorf("frame %d = %q, want %q (order across batch boundaries must hold)", i, got[i], want)
		}
	}
}

func TestFrameReaderRejectsMalformedEnvelopes(t *testing.T) {
	frame := wire.AppendFrame(nil, []byte("xy"))
	cases := []struct {
		name   string
		stream []byte
	}{
		{"bare control marker (truncated control)", []byte{0, 0}},
		{"control payload over limit", wire.AppendControl(nil, 1, make([]byte, 4096))},
		{"empty frame in envelope", append([]byte{0, 1}, 0)},
		{"nested marker", func() []byte {
			// An envelope whose body starts with another batch marker:
			// the zero prefix reads as an empty frame.
			inner := wire.AppendBatch(nil, frame)
			return wire.AppendBatch(nil, inner)
		}()},
		{"frame overruns envelope", func() []byte {
			// Envelope claims 2 bytes but the frame inside needs 3.
			s := []byte{0, 2}
			return append(s, frame...)
		}()},
		{"truncated envelope header", []byte{0}},
		{"truncated envelope body", wire.AppendBatch(nil, frame)[:3]},
		{"oversized frame", wire.AppendFrame(nil, make([]byte, 2000))},
		{"oversized envelope", wire.AppendBatch(nil, wire.AppendFrame(nil, make([]byte, 2000)))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := collect(t, tc.stream, 1000); err == nil {
				t.Fatalf("stream %x accepted", tc.stream)
			}
		})
	}
}

func TestFrameReaderCleanVsTruncatedEOF(t *testing.T) {
	stream := wire.AppendFrame(nil, []byte("hello"))
	// Clean boundary → io.EOF.
	fr := wire.NewFrameReader(bytes.NewReader(stream), 1<<10)
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("clean end = %v, want io.EOF", err)
	}
	// Mid-frame truncation → ErrUnexpectedEOF.
	fr = wire.NewFrameReader(bytes.NewReader(stream[:len(stream)-2]), 1<<10)
	if _, err := fr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated frame = %v, want ErrUnexpectedEOF", err)
	}
}

// TestFrameReaderAcceptsLegacyStream: a stream of only single frames
// (what a pre-batching writer emits) must read byte-for-byte.
func TestFrameReaderAcceptsLegacyStream(t *testing.T) {
	var stream []byte
	var want [][]byte
	for _, m := range wire.Samples() {
		b, err := wire.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		stream = wire.AppendFrame(stream, b)
		want = append(want, b)
	}
	got, err := collect(t, stream, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("frame %d differs", i)
		}
	}
}

// appendAll drives a coalescer with the given payloads and closes it.
func appendAll(t *testing.T, co *wire.Coalescer, payloads [][]byte) {
	t.Helper()
	for _, p := range payloads {
		if !co.Append(p) {
			t.Fatal("Append refused before close")
		}
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescerStreamDecodesInOrder(t *testing.T) {
	var payloads [][]byte
	for i := 0; i < 300; i++ {
		payloads = append(payloads, []byte(fmt.Sprintf("payload-%03d", i)))
	}
	var sink bytes.Buffer
	co := wire.NewCoalescer(&sink, 0, nil)
	appendAll(t, co, payloads)

	got, err := collect(t, sink.Bytes(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("frame %d = %q, want %q", i, got[i], payloads[i])
		}
	}
	st := co.Stats()
	if st.Frames != int64(len(payloads)) {
		t.Errorf("stats.Frames = %d, want %d", st.Frames, len(payloads))
	}
	if st.Bytes != int64(sink.Len()) {
		t.Errorf("stats.Bytes = %d, sink has %d", st.Bytes, sink.Len())
	}
	if st.Flushes < 1 || st.Writes < st.Flushes {
		t.Errorf("implausible stats %+v", st)
	}
}

// TestCoalescerMaxFramesOne: the no-batching mode must emit a pure
// legacy stream — no envelope markers — one flush per frame.
func TestCoalescerMaxFramesOne(t *testing.T) {
	payloads := [][]byte{[]byte("aa"), []byte("bb"), []byte("cc")}
	var sink bytes.Buffer
	co := wire.NewCoalescer(&sink, 1, nil)
	appendAll(t, co, payloads)
	var want []byte
	for _, p := range payloads {
		want = wire.AppendFrame(want, p)
	}
	if !bytes.Equal(sink.Bytes(), want) {
		t.Fatalf("stream %x, want legacy %x", sink.Bytes(), want)
	}
	st := co.Stats()
	if st.Batches != 0 || st.Frames != 3 || st.Flushes != 3 {
		t.Fatalf("no-batching stats %+v", st)
	}
}

// shortWriter writes at most k bytes per call and (wrongly) reports no
// error on the short write — the io.Writer contract violation the
// coalescer must tolerate rather than silently drop a suffix.
type shortWriter struct {
	k    int
	sink bytes.Buffer
}

func (w *shortWriter) Write(p []byte) (int, error) {
	if len(p) > w.k {
		p = p[:w.k]
	}
	return w.sink.Write(p)
}

func TestCoalescerToleratesShortWrites(t *testing.T) {
	var payloads [][]byte
	for i := 0; i < 40; i++ {
		payloads = append(payloads, bytes.Repeat([]byte{byte(i)}, 50+i))
	}
	w := &shortWriter{k: 7}
	co := wire.NewCoalescer(w, 0, nil)
	appendAll(t, co, payloads)
	got, err := collect(t, w.sink.Bytes(), 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("frame %d corrupted across short writes", i)
		}
	}
}

// errWriter fails after accepting n bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("boom")
	}
	k := len(p)
	if k > w.n {
		k = w.n
	}
	w.n -= k
	if k < len(p) {
		return k, errors.New("boom")
	}
	return k, nil
}

func TestCoalescerReportsWriteError(t *testing.T) {
	errc := make(chan error, 1)
	co := wire.NewCoalescer(&errWriter{n: 3}, 0, func(err error) { errc <- err })
	co.Append(bytes.Repeat([]byte{1}, 100))
	if err := <-errc; err == nil {
		t.Fatal("onErr not called")
	}
	if err := co.Close(); err == nil {
		t.Fatal("Close reported no error")
	}
	if co.Append([]byte{2}) {
		t.Fatal("Append accepted after failure")
	}
}

func TestCoalescerConcurrentAppends(t *testing.T) {
	var sink bytes.Buffer
	var mu sync.Mutex
	lockedSink := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sink.Write(p)
	})
	co := wire.NewCoalescer(lockedSink, 0, nil)
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				co.Append([]byte(fmt.Sprintf("w%d-%04d", w, i)))
			}
		}()
	}
	wg.Wait()
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	stream := append([]byte(nil), sink.Bytes()...)
	mu.Unlock()
	got, err := collect(t, stream, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != workers*per {
		t.Fatalf("decoded %d frames, want %d", len(got), workers*per)
	}
	// Per-worker order must hold (append order is frame order).
	next := make([]int, workers)
	for _, f := range got {
		var w, i int
		if _, err := fmt.Sscanf(string(f), "w%d-%d", &w, &i); err != nil {
			t.Fatalf("bad frame %q", f)
		}
		if i != next[w] {
			t.Fatalf("worker %d frame %d arrived, want %d (reordered)", w, i, next[w])
		}
		next[w]++
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

func TestGetReleaseFrame(t *testing.T) {
	b := wire.GetFrame(10)
	if len(b) != 0 || cap(b) < 10 {
		t.Fatalf("GetFrame: len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, 1, 2, 3)
	wire.ReleaseFrame(b)
	c := wire.GetFrame(1)
	if len(c) != 0 {
		t.Fatalf("recycled buffer not empty: len=%d", len(c))
	}
}

// TestFrameReaderStreamControls: controls interleave with frames and
// envelopes, are surfaced through OnControl in stream order, and yield
// no frame; a handler error fails the stream.
func TestFrameReaderStreamControls(t *testing.T) {
	var stream []byte
	stream = wire.AppendControl(stream, wire.CtrlTokenDelta, nil)
	stream = wire.AppendFrame(stream, []byte("aa"))
	stream = wire.AppendControl(stream, 9, []byte{1, 2})
	stream = wire.AppendBatch(stream, wire.AppendFrame(wire.AppendFrame(nil, []byte("bb")), []byte("cc")))

	var controls []uint64
	var payloads [][]byte
	fr := wire.NewFrameReader(bytes.NewReader(stream), 1<<16)
	fr.OnControl(func(code uint64, payload []byte) error {
		controls = append(controls, code)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	var frames [][]byte
	for {
		f, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, append([]byte(nil), f...))
	}
	if len(frames) != 3 || string(frames[0]) != "aa" || string(frames[1]) != "bb" || string(frames[2]) != "cc" {
		t.Fatalf("frames = %q", frames)
	}
	if len(controls) != 2 || controls[0] != wire.CtrlTokenDelta || controls[1] != 9 {
		t.Fatalf("controls = %v", controls)
	}
	if len(payloads[1]) != 2 || payloads[1][0] != 1 {
		t.Fatalf("control payload = %v", payloads[1])
	}

	// A handler rejecting a control (any error other than
	// ErrUnknownControl) fails the stream.
	fr = wire.NewFrameReader(bytes.NewReader(stream), 1<<16)
	fr.OnControl(func(code uint64, payload []byte) error {
		if code != wire.CtrlTokenDelta {
			return fmt.Errorf("malformed control %d", code)
		}
		return nil
	})
	var err error
	for err == nil {
		_, err = fr.Next()
	}
	if err == io.EOF {
		t.Fatal("rejected control accepted")
	}
}

// TestFrameReaderSkipsUnknownControls pins the forward-compatibility
// rule: unknown stream controls are skipped and counted — by a reader
// with no handler, and by a handler returning ErrUnknownControl — so
// future controls never break old decoders. Consumed must account for
// every stream byte either way (it is what flow control credits back).
func TestFrameReaderSkipsUnknownControls(t *testing.T) {
	var stream []byte
	stream = wire.AppendControl(stream, 77, []byte{9, 9, 9})
	stream = wire.AppendFrame(stream, []byte("aa"))
	stream = wire.AppendControl(stream, 78, nil)
	stream = wire.AppendFrame(stream, []byte("bb"))

	check := func(t *testing.T, fr *wire.FrameReader, wantSkips uint64) {
		t.Helper()
		var frames [][]byte
		for {
			f, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			frames = append(frames, append([]byte(nil), f...))
		}
		if len(frames) != 2 || string(frames[0]) != "aa" || string(frames[1]) != "bb" {
			t.Fatalf("frames = %q", frames)
		}
		if got := fr.SkippedControls(); got != wantSkips {
			t.Fatalf("SkippedControls = %d, want %d", got, wantSkips)
		}
		if got := fr.Consumed(); got != uint64(len(stream)) {
			t.Fatalf("Consumed = %d, want the whole stream (%d bytes)", got, len(stream))
		}
	}

	t.Run("no handler", func(t *testing.T) {
		check(t, wire.NewFrameReader(bytes.NewReader(stream), 1<<16), 2)
	})
	t.Run("handler returns ErrUnknownControl", func(t *testing.T) {
		fr := wire.NewFrameReader(bytes.NewReader(stream), 1<<16)
		fr.OnControl(func(code uint64, payload []byte) error {
			return fmt.Errorf("%w %d", wire.ErrUnknownControl, code)
		})
		check(t, fr, 2)
	})
}
