package wire_test

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"mralloc/internal/leakcheck"
	"mralloc/internal/wire"
)

// The flush-delay timer puts the flusher goroutine to sleep between
// wakeup and drain; these tests pin that no Close path leaks it —
// idle, mid-delay with frames queued (which must still be written),
// and after a write error.

func TestFlushDelayCloseIdleLeaksNothing(t *testing.T) {
	check := leakcheck.Check(t)
	var sink bytes.Buffer
	co := wire.NewCoalescer(&sink, 0, nil)
	co.SetFlushDelay(time.Hour) // never fires; Close must not wait for it
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	check()
}

func TestFlushDelayCloseMidDelayFlushesAndExits(t *testing.T) {
	check := leakcheck.Check(t)
	var mu sync.Mutex
	var sink bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return sink.Write(p)
	})
	co := wire.NewCoalescer(w, 0, nil)
	co.SetFlushDelay(time.Hour)
	for i := 0; i < 5; i++ {
		if !co.Append([]byte{byte(i), 1, 2}) {
			t.Fatal("Append refused")
		}
	}
	// The flusher is now parked in the hour-long delay. Close must cut
	// it short, write everything queued, and join the goroutine.
	start := time.Now()
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("Close took %v: the delay was not cut short", elapsed)
	}
	mu.Lock()
	stream := append([]byte(nil), sink.Bytes()...)
	mu.Unlock()
	frames, err := collect(t, stream, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 5 {
		t.Fatalf("%d frames written, want 5 (queued frames dropped on Close)", len(frames))
	}
	st := co.Stats()
	if st.Batches != 1 || st.Flushes != 1 {
		t.Errorf("mid-delay close should flush once as one batch: %+v", st)
	}
	check()
}

func TestFlushDelayCloseAfterErrorLeaksNothing(t *testing.T) {
	check := leakcheck.Check(t)
	errc := make(chan error, 1)
	co := wire.NewCoalescer(&errWriter{n: 1}, 0, func(err error) { errc <- err })
	co.SetFlushDelay(time.Millisecond)
	co.Append(bytes.Repeat([]byte{7}, 64))
	if err := <-errc; err == nil {
		t.Fatal("onErr not called")
	}
	// Frames appended after the failure are refused and must not pin
	// anything.
	if co.Append([]byte{1}) {
		t.Fatal("Append accepted after failure")
	}
	if err := co.Close(); err == nil {
		t.Fatal("Close reported no error")
	}
	check()
}

func TestFlushAdaptiveStaysWithinBounds(t *testing.T) {
	check := leakcheck.Check(t)
	var mu sync.Mutex
	var sink bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		time.Sleep(50 * time.Microsecond) // slow writer creates fan-in pressure
		return sink.Write(p)
	})
	co := wire.NewCoalescer(w, 0, nil)
	const base, max = 0, 500 * time.Microsecond
	co.SetFlushAdaptive(base, max)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				co.Append([]byte{1, 2, 3})
				time.Sleep(20 * time.Microsecond)
			}
		}()
	}
	// Let the controller run under live pressure for a while; whatever
	// it chose, it must stay inside [base, max] (the deterministic
	// widening/narrowing behavior is pinned by TestAdaptController).
	time.Sleep(50 * time.Millisecond)
	d := co.FlushDelay()
	close(stop)
	wg.Wait()
	if d < base || d > max {
		t.Errorf("adaptive delay %v outside [%v, %v]", d, base, max)
	}
	if err := co.Close(); err != nil {
		t.Fatal(err)
	}
	check()
}
