package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Connection negotiation. Every negotiated connection (peer transport
// and client port alike) opens with a Hello exchange riding the
// stream-control element of batch.go: the dialer announces its
// protocol version, cluster shape, feature set and receive window; the
// acceptor answers only after seeing a valid hello — so a legacy
// dialer that never sends one is served in legacy mode, byte for byte
// — and either side that cannot proceed answers CtrlReject with a
// reason instead of silently dropping the socket.
//
// The hello payload is forward-compatible by construction: decoders
// ignore trailing bytes, so future versions may append fields without
// breaking old peers, and unknown feature bits are simply never part
// of the negotiated intersection.

// ProtoVersion is the wire protocol version this build speaks. A hello
// carrying a different version is rejected — the version only moves
// when the stream alphabet itself changes, which the feature bits
// exist to avoid.
const ProtoVersion = 1

// Feature bits a hello advertises. A capability is used on a
// connection only when both hellos carry its bit (Intersect), which is
// what lets heterogeneous builds interoperate: the connection degrades
// to the common subset instead of desynchronizing.
const (
	// FeatDelta: the sender can decode delta-encoded token state
	// (CtrlTokenDelta payloads).
	FeatDelta uint64 = 1 << iota
	// FeatWritev: vectored (writev) egress. Purely a sender-local
	// optimization — advertised for introspection and symmetric
	// negotiation, never required for decoding.
	FeatWritev
	// FeatFlushDelay: the adaptive flush scheduler. Sender-local, like
	// FeatWritev.
	FeatFlushDelay
	// FeatCompress is reserved for a future compressed-envelope format;
	// no current build sets it.
	FeatCompress
)

// Hello is the negotiation announcement either side of a connection
// sends as a CtrlHello stream control before any frame.
type Hello struct {
	// Version is the sender's ProtoVersion.
	Version uint64
	// Nodes and Resources are the sender's cluster shape (N and M).
	// Zero means "unknown/unchecked" — a client that dials precisely to
	// learn M sends zero; mismatching non-zero values are rejected.
	Nodes, Resources int
	// Features is the sender's advertised feature set (Feat* bits).
	Features uint64
	// Window is the sender's receive window in bytes: how many stream
	// bytes it is willing to buffer from the peer before crediting them
	// back with CtrlWindow updates. Zero disables crediting (the sender
	// promises to drain unboundedly).
	Window uint64
	// Shards is the sender's resource-shard count (appended field —
	// absent in hellos from older builds, which ParseHello reports as
	// zero). Zero means unannounced and is interoperable with exactly
	// one shard: the flat single-universe protocol, whose frames carry
	// no shard tags. Mismatching non-zero values are rejected like a
	// shape mismatch.
	Shards int
}

// Intersect reports the feature set two hellos agree on.
func (h Hello) Intersect(o Hello) uint64 { return h.Features & o.Features }

// maxHelloShape bounds the node/resource counts a hello may claim; a
// hostile hello must not smuggle absurd shapes past validation.
const maxHelloShape = 1 << 24

// AppendHello appends h's payload encoding (version, nodes, resources,
// features, window, shards — all uvarints) onto dst. Wrap it in a
// control with AppendControl(dst, CtrlHello, payload).
func AppendHello(dst []byte, h Hello) []byte {
	dst = binary.AppendUvarint(dst, h.Version)
	dst = binary.AppendUvarint(dst, uint64(h.Nodes))
	dst = binary.AppendUvarint(dst, uint64(h.Resources))
	dst = binary.AppendUvarint(dst, h.Features)
	dst = binary.AppendUvarint(dst, h.Window)
	dst = binary.AppendUvarint(dst, uint64(h.Shards))
	return dst
}

// ParseHello decodes a CtrlHello payload. Trailing bytes are ignored —
// future versions may append fields — but a truncated or absurd hello
// is an error. The shards field is itself such an appended field:
// hellos from builds predating it simply end after window, which
// parses as Shards zero.
func ParseHello(payload []byte) (Hello, error) {
	var h Hello
	fields := [5]*uint64{&h.Version, nil, nil, &h.Features, &h.Window}
	var nodes, resources uint64
	fields[1], fields[2] = &nodes, &resources
	rest := payload
	for i, f := range fields {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return Hello{}, fmt.Errorf("wire: hello truncated at field %d", i)
		}
		*f = v
		rest = rest[n:]
	}
	if nodes > maxHelloShape || resources > maxHelloShape {
		return Hello{}, fmt.Errorf("wire: hello claims absurd shape %d/%d", nodes, resources)
	}
	h.Nodes, h.Resources = int(nodes), int(resources)
	if len(rest) > 0 {
		shards, n := binary.Uvarint(rest)
		if n <= 0 {
			return Hello{}, fmt.Errorf("wire: hello truncated at shards field")
		}
		if shards > MaxShards {
			return Hello{}, fmt.Errorf("wire: hello claims absurd shard count %d", shards)
		}
		h.Shards = int(shards)
	}
	return h, nil
}

// AppendWindowUpdate appends a CtrlWindow payload crediting n consumed
// bytes back to the sender.
func AppendWindowUpdate(dst []byte, n uint64) []byte {
	return binary.AppendUvarint(dst, n)
}

// ParseWindowUpdate decodes a CtrlWindow payload.
func ParseWindowUpdate(payload []byte) (uint64, error) {
	v, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, fmt.Errorf("wire: truncated window update")
	}
	return v, nil
}

// maxRejectReason bounds a CtrlReject reason string.
const maxRejectReason = 256

// AppendReject appends a CtrlReject payload carrying a human-readable
// reason (truncated to maxRejectReason bytes).
func AppendReject(dst []byte, reason string) []byte {
	if len(reason) > maxRejectReason {
		reason = reason[:maxRejectReason]
	}
	dst = binary.AppendUvarint(dst, uint64(len(reason)))
	return append(dst, reason...)
}

// ParseReject decodes a CtrlReject payload.
func ParseReject(payload []byte) (string, error) {
	n, k := binary.Uvarint(payload)
	if k <= 0 || n > maxRejectReason || uint64(len(payload)-k) < n {
		return "", fmt.Errorf("wire: malformed reject payload")
	}
	return string(payload[k : uint64(k)+n]), nil
}

// Control is one stream-control element read outside a FrameReader —
// the handshake phase, where the dialer reads controls synchronously
// before any frame machinery exists.
type Control struct {
	Code    uint64
	Payload []byte
}

// ReadControl reads exactly one stream-control element from br. It is
// the dialer's handshake reader: anything other than a control (a
// frame, an envelope, garbage) is an error, because a conforming
// acceptor sends nothing but controls before the handshake completes.
func ReadControl(br *bufio.Reader) (Control, error) {
	for _, marker := range [2]string{"batch", "control"} {
		b, err := binary.ReadUvarint(br)
		if err != nil {
			return Control{}, err
		}
		if b != 0 {
			return Control{}, fmt.Errorf("wire: expected a stream control, got a %s-position length %d", marker, b)
		}
	}
	code, err := binary.ReadUvarint(br)
	if err != nil {
		return Control{}, noEOF(err)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return Control{}, noEOF(err)
	}
	if n > maxControlPayload {
		return Control{}, fmt.Errorf("wire: stream control %d with %d-byte payload exceeds limit %d", code, n, maxControlPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Control{}, noEOF(err)
	}
	return Control{Code: code, Payload: payload}, nil
}
