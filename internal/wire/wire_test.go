package wire_test

import (
	"bytes"
	"math"
	"testing"

	"mralloc/internal/network"
	"mralloc/internal/resource"
	"mralloc/internal/wire"

	// Each protocol package registers its message codecs in init; the
	// serve package registers the client-facing kinds and the transport
	// package its reliable-delivery envelope kinds the same way.
	_ "mralloc/internal/bouabdallah"
	_ "mralloc/internal/core"
	_ "mralloc/internal/incremental"
	_ "mralloc/internal/pmutex"
	_ "mralloc/internal/serve"
	_ "mralloc/internal/transport"
)

// expectedKinds is every message kind that can cross a live-cluster
// wire. The test pins the list so that adding a message type without a
// codec (or a codec without samples) fails loudly here rather than at
// runtime in a TCP cluster.
var expectedKinds = []string{
	"BL.CTRequest", "BL.CTToken", "BL.Inquire", "BL.ResToken",
	"Client.Acquire", "Client.Deny", "Client.Grant", "Client.Release",
	"Inc.Request", "Inc.Token",
	"LASS.HB", "LASS.Lease", "LASS.Regen", "LASS.Request", "LASS.Response",
	"PMutex.Request", "PMutex.Token",
	"Rel.Ack", "Rel.Data",
}

func TestAllProtocolKindsRegistered(t *testing.T) {
	for _, k := range expectedKinds {
		if !wire.Registered(k) {
			t.Errorf("kind %q has no codec", k)
		}
	}
}

// TestSamplesCoverAllKinds: the shared corpus must exercise every
// registered kind — it seeds the fuzzers and drives the round-trip
// test, so a kind without samples is a kind without coverage.
func TestSamplesCoverAllKinds(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range wire.Samples() {
		seen[m.Kind()] = true
	}
	for _, k := range wire.Kinds() {
		if !seen[k] {
			t.Errorf("no sample message for registered kind %q", k)
		}
	}
}

// TestRoundTripStability: encode→decode→re-encode must be the identity
// on encoded bytes for every sample of every kind.
func TestRoundTripStability(t *testing.T) {
	for i, m := range wire.Samples() {
		b1, err := wire.Append(nil, m)
		if err != nil {
			t.Fatalf("sample %d (%s): encode: %v", i, m.Kind(), err)
		}
		m2, err := wire.Decode(b1)
		if err != nil {
			t.Fatalf("sample %d (%s): decode: %v", i, m.Kind(), err)
		}
		if m2.Kind() != m.Kind() {
			t.Fatalf("sample %d: kind %q decoded as %q", i, m.Kind(), m2.Kind())
		}
		b2, err := wire.Append(nil, m2)
		if err != nil {
			t.Fatalf("sample %d (%s): re-encode: %v", i, m.Kind(), err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("sample %d (%s): re-encode differs\n  b1=%x\n  b2=%x", i, m.Kind(), b1, b2)
		}
	}
}

// TestTruncationsError: every strict prefix of a valid encoding must
// decode to an error — never a panic, never a bogus success.
func TestTruncationsError(t *testing.T) {
	for i, m := range wire.Samples() {
		b, err := wire.Append(nil, m)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(b); cut++ {
			if _, err := wire.Decode(b[:cut]); err == nil {
				t.Fatalf("sample %d (%s): prefix of %d/%d bytes decoded without error",
					i, m.Kind(), cut, len(b))
			}
		}
	}
}

func TestTrailingBytesError(t *testing.T) {
	b, err := wire.Append(nil, wire.Samples()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wire.Decode(append(b, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestShapeValidation: DecodeFor must reject frames whose site ids,
// resource ids, set universes or per-site vector lengths do not fit
// the declared cluster shape — those are exactly the frames that would
// otherwise crash a protocol state machine on a bad index.
func TestShapeValidation(t *testing.T) {
	sampleOf := func(kind string) []byte {
		t.Helper()
		for _, m := range wire.Samples() {
			if m.Kind() != kind {
				continue
			}
			b, err := wire.Append(nil, m)
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		t.Fatalf("no sample of kind %q", kind)
		return nil
	}

	// The first LASS.Request sample carries sites up to 2 and a
	// universe-8 missing set: it fits a (4, 8) cluster exactly...
	req := sampleOf("LASS.Request")
	if _, err := wire.DecodeFor(req, 4, 8); err != nil {
		t.Errorf("matching shape rejected: %v", err)
	}
	// ...and must be rejected by shapes that cannot hold it.
	if _, err := wire.DecodeFor(req, 2, 8); err == nil {
		t.Error("site id 2 accepted in a 2-node cluster")
	}
	if _, err := wire.DecodeFor(req, 8, 4); err == nil {
		t.Error("universe-8 missing set accepted in a 4-resource cluster")
	}

	// The LASS.Response sample carries 4-entry token stamp vectors:
	// exactly a 4-node cluster, nothing else — those vectors are
	// indexed by site id on arrival.
	resp := sampleOf("LASS.Response")
	if _, err := wire.DecodeFor(resp, 4, 8); err != nil {
		t.Errorf("matching shape rejected: %v", err)
	}
	if _, err := wire.DecodeFor(resp, 8, 8); err == nil {
		t.Error("4-site stamp vectors accepted in an 8-node cluster")
	}

	// The control token carries one entry per resource (6 here).
	ct := sampleOf("BL.CTToken")
	if _, err := wire.DecodeFor(ct, 6, 6); err != nil {
		t.Errorf("matching shape rejected: %v", err)
	}
	if _, err := wire.DecodeFor(ct, 6, 8); err == nil {
		t.Error("6-entry control token accepted in an 8-resource cluster")
	}
}

type unknownMsg struct{}

func (unknownMsg) Kind() string { return "Test.Unregistered" }

func TestUnknownKind(t *testing.T) {
	if _, err := wire.Append(nil, unknownMsg{}); err == nil {
		t.Fatal("encoding an unregistered kind succeeded")
	}
	var e wire.Enc
	e.String("Test.Unregistered")
	if _, err := wire.Decode(e.Bytes()); err == nil {
		t.Fatal("decoding an unregistered kind succeeded")
	}
}

func TestPrimitiveRoundTrip(t *testing.T) {
	var e wire.Enc
	e.Uvarint(0)
	e.Uvarint(1 << 40)
	e.Varint(-1)
	e.Varint(math.MaxInt64)
	e.Bool(true)
	e.Bool(false)
	e.F64(math.Inf(-1))
	e.F64(1.5)
	e.String("héllo")
	e.Node(network.None)
	e.Nodes([]network.NodeID{3, 1, 4})
	e.Int64s([]int64{-7, 0, 9})
	e.Set(resource.FromIDs(130, 0, 63, 64, 129))
	e.Set(resource.Set{})

	d := wire.NewDec(e.Bytes())
	if got := d.Uvarint(); got != 0 {
		t.Errorf("uvarint: %d", got)
	}
	if got := d.Uvarint(); got != 1<<40 {
		t.Errorf("uvarint: %d", got)
	}
	if got := d.Varint(); got != -1 {
		t.Errorf("varint: %d", got)
	}
	if got := d.Varint(); got != math.MaxInt64 {
		t.Errorf("varint: %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Error("bools")
	}
	if got := d.F64(); !math.IsInf(got, -1) {
		t.Errorf("f64: %v", got)
	}
	if got := d.F64(); got != 1.5 {
		t.Errorf("f64: %v", got)
	}
	if got := d.String(); got != "héllo" {
		t.Errorf("string: %q", got)
	}
	if got := d.Node(); got != network.None {
		t.Errorf("node: %v", got)
	}
	if got := d.Nodes(); len(got) != 3 || got[0] != 3 || got[1] != 1 || got[2] != 4 {
		t.Errorf("nodes: %v", got)
	}
	if got := d.Int64s(); len(got) != 3 || got[0] != -7 || got[2] != 9 {
		t.Errorf("int64s: %v", got)
	}
	s := d.Set()
	if s.Universe() != 130 || s.Len() != 4 || !s.Has(129) || !s.Has(0) {
		t.Errorf("set: %v over %d", s, s.Universe())
	}
	if s2 := d.Set(); s2.Universe() != 0 || s2.Len() != 0 {
		t.Errorf("zero set: %v over %d", s2, s2.Universe())
	}
	if d.Err() != nil {
		t.Fatalf("decode error: %v", d.Err())
	}
	if d.Remaining() != 0 {
		t.Fatalf("%d bytes left over", d.Remaining())
	}
}

// TestSetDecodeRejections: the set decoder must reject universes past
// the cap, members outside the universe, and non-ascending members.
func TestSetDecodeRejections(t *testing.T) {
	cases := map[string]func(e *wire.Enc){
		"huge universe": func(e *wire.Enc) {
			e.Uvarint(wire.MaxUniverse + 1)
			e.Uvarint(0)
		},
		"member outside universe": func(e *wire.Enc) {
			e.Uvarint(4)
			e.Uvarint(1)
			e.Uvarint(9)
		},
		"more members than universe": func(e *wire.Enc) {
			e.Uvarint(2)
			e.Uvarint(3)
			e.Uvarint(0)
			e.Uvarint(1)
			e.Uvarint(1)
		},
		"duplicate member": func(e *wire.Enc) {
			e.Uvarint(8)
			e.Uvarint(2)
			e.Uvarint(3)
			e.Uvarint(0)
		},
	}
	for name, build := range cases {
		var e wire.Enc
		build(&e)
		d := wire.NewDec(e.Bytes())
		d.Set()
		if d.Err() == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestAllocationBudget: a tiny frame must not be able to demand huge
// slices, even when its length fields are individually plausible.
func TestAllocationBudget(t *testing.T) {
	var e wire.Enc
	e.Uvarint(wire.MaxUniverse) // a maximal universe from a few bytes
	e.Uvarint(0)
	d := wire.NewDec(e.Bytes())
	d.Set()
	if d.Err() == nil {
		t.Fatal("128KB bitset allocated from a 5-byte frame")
	}
}

// TestElementCountBudget: a frame whose element count is bounded by
// its own byte length must still be charged for the decoded element
// size, which is 10-100x larger than the encoded byte — otherwise a
// 64KB frame could demand a multi-MB preallocation.
func TestElementCountBudget(t *testing.T) {
	const claimed = 1 << 16
	var e wire.Enc
	e.String("LASS.Request")
	e.Uvarint(0)       // no visited sites
	e.Uvarint(claimed) // an enormous request count...
	pad := make([]byte, claimed)
	for i := range pad {
		pad[i] = 0xff // ...backed by padding, not by valid requests
	}
	if _, err := wire.Decode(append(e.Bytes(), pad...)); err == nil {
		t.Fatal("64K-element claim decoded without error")
	}
}

// TestLoanWithoutMissingRejected: a loan request must carry a real
// missing set — the zero-universe zero value would panic the token
// holder's set algebra, which is exactly what shape validation is
// supposed to prevent.
func TestLoanWithoutMissingRejected(t *testing.T) {
	var e wire.Enc
	e.String("LASS.Request")
	e.Uvarint(0) // visited
	e.Uvarint(1) // one request
	e.Uvarint(2) // reqLoan
	e.Varint(3)  // R
	e.Varint(1)  // Init
	e.Varint(5)  // ID
	e.F64(1.5)   // Mark
	e.Uvarint(0) // Missing: universe 0...
	e.Uvarint(0) // ...no members (the zero value)
	e.Bool(false)
	if _, err := wire.Decode(e.Bytes()); err == nil {
		t.Fatal("loan request with a zero-value missing set decoded")
	}
}
