package wire

import (
	"fmt"
	"sort"
	"sync"

	"mralloc/internal/network"
)

// EncodeFunc writes a message's payload. It is called only with
// messages of the concrete type registered for the kind, produced by
// the protocol itself, so it has no error path.
type EncodeFunc func(*Enc, network.Message)

// DecodeFunc reconstructs a message from a payload. Malformed input
// must be reported through the decoder's sticky error, never a panic.
type DecodeFunc func(*Dec) network.Message

type codec struct {
	enc EncodeFunc
	dec DecodeFunc
}

var (
	regMu    sync.RWMutex
	registry = map[string]codec{}
	samples  []network.Message
)

// Register installs the codec for one message kind. Kinds whose Kind()
// string varies with message content (e.g. the request/token faces of
// one wrapped mutex message) register every string they can return,
// usually sharing one encoder/decoder pair. Registering a kind twice
// panics: kind strings are a global namespace.
func Register(kind string, enc EncodeFunc, dec DecodeFunc) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("wire: kind %q registered twice", kind))
	}
	registry[kind] = codec{enc: enc, dec: dec}
}

// RegisterSamples adds representative messages to the shared corpus.
// The codec tests round-trip every sample and the fuzz targets use
// their encodings as seeds, so each registered kind should contribute
// at least one sample exercising its optional fields.
func RegisterSamples(msgs ...network.Message) {
	regMu.Lock()
	defer regMu.Unlock()
	samples = append(samples, msgs...)
}

// Registered reports whether kind has a codec.
func Registered(kind string) bool {
	regMu.RLock()
	defer regMu.RUnlock()
	_, ok := registry[kind]
	return ok
}

// Kinds lists every registered kind, sorted.
func Kinds() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Samples returns the registered sample messages.
func Samples() []network.Message {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]network.Message(nil), samples...)
}

// Append encodes m — kind string, then payload — onto buf and returns
// the extended buffer. It fails only for unregistered kinds.
func Append(buf []byte, m network.Message) ([]byte, error) {
	return AppendStream(buf, m, nil)
}

// AppendStream is Append under a per-connection codec context: codecs
// that keep per-stream state (core's token deltas) read and update it
// through the encoder's Stream. A nil Stream yields the legacy
// encoding byte for byte.
func AppendStream(buf []byte, m network.Message, strm *Stream) ([]byte, error) {
	kind := m.Kind()
	regMu.RLock()
	c, ok := registry[kind]
	regMu.RUnlock()
	if !ok {
		return buf, fmt.Errorf("wire: no codec registered for kind %q", kind)
	}
	e := Enc{buf: buf, strm: strm}
	e.String(kind)
	c.enc(&e, m)
	return e.buf, nil
}

// Decode reconstructs the message encoded in b. The whole buffer must
// be consumed; trailing bytes are an error, as is any malformed field.
// Decode never panics, whatever b holds.
func Decode(b []byte) (network.Message, error) {
	return DecodeFor(b, 0, 0)
}

// DecodeFor is Decode plus cluster-shape validation (see NewDecFor):
// the transport layer of a running cluster uses it so that frames from
// a differently-configured or hostile peer fail the decode instead of
// crashing a protocol state machine on an out-of-range identifier.
func DecodeFor(b []byte, nodes, resources int) (network.Message, error) {
	return DecodeStream(b, nodes, resources, nil)
}

// DecodeStream is DecodeFor under a per-connection codec context — the
// decode-side dual of AppendStream. The connection loop owns the
// Stream and passes it for every frame of the connection; stateful
// codecs find their caches there.
func DecodeStream(b []byte, nodes, resources int, strm *Stream) (network.Message, error) {
	d := NewDecFor(b, nodes, resources)
	d.strm = strm
	kind := d.String()
	if d.err != nil {
		return nil, d.err
	}
	regMu.RLock()
	c, ok := registry[kind]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: unknown kind %q", kind)
	}
	m := c.dec(d)
	if d.err != nil {
		return nil, d.err
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after %q payload", d.Remaining(), kind)
	}
	return m, nil
}
