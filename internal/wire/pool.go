package wire

import "sync"

// Pooled encode buffers for the egress hot path. A sender that encodes
// one frame per message used to allocate one buffer per message; with
// the pool, a buffer is borrowed for the encode, its bytes are copied
// into a connection's coalescing writer, and the buffer goes straight
// back — the steady state allocates nothing.
//
// The free list is a plain mutex-guarded stack rather than a sync.Pool:
// releasing into a sync.Pool boxes the slice header (one small
// allocation per release, exactly what the pool exists to avoid), and
// the GC may drop pooled buffers between bursts. Capacity is bounded so
// a one-off giant frame cannot pin memory forever.

const (
	// frameBufCap is the capacity of a freshly made pooled buffer —
	// comfortably above a typical protocol frame (a token with two
	// N-sized stamp vectors at N=512 is ~4KB).
	frameBufCap = 4096
	// maxPooledCap bounds the capacity of a buffer the pool will keep.
	maxPooledCap = 1 << 18
	// maxPooledBufs bounds how many buffers the pool holds. Owned-frame
	// egress keeps one pooled buffer per queued frame (the coalescing
	// writers release them after the write), so a deep send queue
	// cycles many more buffers than the old encode-copy-release path.
	maxPooledBufs = 256
)

var framePool struct {
	mu   sync.Mutex
	free [][]byte
}

// GetFrame returns an empty buffer with at least n bytes of capacity,
// ready to append an encoded frame into. Release it with ReleaseFrame
// once its bytes have been handed off (copied or written).
func GetFrame(n int) []byte {
	framePool.mu.Lock()
	if k := len(framePool.free); k > 0 {
		b := framePool.free[k-1]
		framePool.free[k-1] = nil
		framePool.free = framePool.free[:k-1]
		framePool.mu.Unlock()
		if cap(b) >= n {
			return b[:0]
		}
		// Too small for this caller; let it go and size a fresh one.
	} else {
		framePool.mu.Unlock()
	}
	if n < frameBufCap {
		n = frameBufCap
	}
	return make([]byte, 0, n)
}

// ReleaseFrame recycles a buffer obtained from GetFrame (any buffer
// works — the pool only cares about capacity). The caller must not
// touch b afterwards.
func ReleaseFrame(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	framePool.mu.Lock()
	if len(framePool.free) < maxPooledBufs {
		framePool.free = append(framePool.free, b[:0])
	}
	framePool.mu.Unlock()
}
