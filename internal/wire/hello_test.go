package wire_test

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"mralloc/internal/wire"
)

func TestHelloRoundTrip(t *testing.T) {
	h := wire.Hello{
		Version:   wire.ProtoVersion,
		Nodes:     512,
		Resources: 80,
		Features:  wire.FeatDelta | wire.FeatWritev | wire.FeatFlushDelay,
		Window:    8 << 20,
	}
	got, err := wire.ParseHello(wire.AppendHello(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip: got %+v, want %+v", got, h)
	}
}

// TestHelloForwardCompat: a future hello may append fields; today's
// parser must ignore the trailing bytes rather than reject them.
func TestHelloForwardCompat(t *testing.T) {
	payload := wire.AppendHello(nil, wire.Hello{Version: 1, Nodes: 3, Resources: 4})
	payload = append(payload, 0xAB, 0xCD, 0xEF) // hypothetical future fields
	got, err := wire.ParseHello(payload)
	if err != nil {
		t.Fatalf("trailing bytes rejected: %v", err)
	}
	if got.Nodes != 3 || got.Resources != 4 {
		t.Fatalf("parsed %+v", got)
	}
}

// TestHelloHostile: truncated and absurd hellos must error, never
// panic or demand memory.
func TestHelloHostile(t *testing.T) {
	cases := map[string][]byte{
		"empty":     nil,
		"truncated": wire.AppendHello(nil, wire.Hello{Version: 1, Nodes: 3, Resources: 4})[:2],
		"absurd shape": func() []byte {
			return wire.AppendHello(nil, wire.Hello{Version: 1, Nodes: 1 << 30, Resources: 4})
		}(),
	}
	for name, payload := range cases {
		if _, err := wire.ParseHello(payload); err == nil {
			t.Errorf("%s hello accepted: %x", name, payload)
		}
	}
}

func TestWindowUpdateAndRejectRoundTrip(t *testing.T) {
	n, err := wire.ParseWindowUpdate(wire.AppendWindowUpdate(nil, 123456))
	if err != nil || n != 123456 {
		t.Fatalf("window update: %d, %v", n, err)
	}
	if _, err := wire.ParseWindowUpdate(nil); err == nil {
		t.Fatal("empty window update accepted")
	}
	reason, err := wire.ParseReject(wire.AppendReject(nil, "version mismatch"))
	if err != nil || reason != "version mismatch" {
		t.Fatalf("reject: %q, %v", reason, err)
	}
	long := strings.Repeat("x", 1000)
	reason, err = wire.ParseReject(wire.AppendReject(nil, long))
	if err != nil || len(reason) != 256 {
		t.Fatalf("long reject not truncated: %d bytes, %v", len(reason), err)
	}
	if _, err := wire.ParseReject([]byte{0xFF}); err == nil {
		t.Fatal("malformed reject accepted")
	}
}

// TestReadControl: the dialer-side handshake reader accepts controls,
// skips nothing (each call is one element), and rejects frames where a
// control is required.
func TestReadControl(t *testing.T) {
	stream := wire.AppendControl(nil, wire.CtrlHello, wire.AppendHello(nil, wire.Hello{Version: 1}))
	stream = wire.AppendControl(stream, 99, []byte{1})
	br := bufio.NewReader(bytes.NewReader(stream))
	c1, err := wire.ReadControl(br)
	if err != nil || c1.Code != wire.CtrlHello {
		t.Fatalf("first control: %+v, %v", c1, err)
	}
	if _, err := wire.ParseHello(c1.Payload); err != nil {
		t.Fatal(err)
	}
	c2, err := wire.ReadControl(br)
	if err != nil || c2.Code != 99 || len(c2.Payload) != 1 {
		t.Fatalf("second control: %+v, %v", c2, err)
	}

	// A frame where a control is required is a handshake violation.
	frame := wire.AppendFrame(nil, []byte("zz"))
	if _, err := wire.ReadControl(bufio.NewReader(bytes.NewReader(frame))); err == nil {
		t.Fatal("frame accepted as a control")
	}
	// An oversized control payload is hostile.
	big := wire.AppendControl(nil, 7, make([]byte, 4096))
	if _, err := wire.ReadControl(bufio.NewReader(bytes.NewReader(big))); err == nil {
		t.Fatal("oversized control accepted")
	}
}
