// Package wire is the binary codec that puts protocol messages on a
// real network. Every network.Message type that may cross a process
// boundary registers an encoder and a decoder under its Kind string;
// the TCP transport (internal/transport) frames the encoded payload
// with a length prefix and the sender/receiver node identifiers.
//
// The codec is deliberately boring: varints, IEEE float bits, explicit
// field order, no reflection. What it is careful about is the untrusted
// direction — Decode must terminate without panicking on arbitrary
// bytes, so every length read is bounded by the remaining input (an
// element costs at least one byte) and every allocation is charged
// against a budget proportional to the input size. A frame that lies
// about its contents yields an error, never a crash or an OOM.
//
// Registration happens in init functions of the protocol packages
// (internal/core, internal/bouabdallah, internal/incremental,
// internal/pmutex), keeping the unexported message types where they
// belong. A package's messages are encodable exactly when the package
// is linked in.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"mralloc/internal/network"
	"mralloc/internal/resource"
)

// Stream carries per-connection codec state across frames: which
// stream-control features (batch.go) are active, plus whatever
// per-kind state a codec keeps for the life of the connection — the
// token delta caches of internal/core live here. One Stream serves one
// direction of one connection; encoding through a shared Stream from
// concurrent senders is safe (codecs guard their own state), decoding
// is single-goroutine per connection by construction.
//
// A nil *Stream is valid everywhere and means "no per-stream state":
// Append/Decode without a Stream produce exactly the legacy encoding.
type Stream struct {
	mu    sync.Mutex
	flags uint64
	vals  map[any]any
}

// NewStream returns an empty per-connection codec context.
func NewStream() *Stream { return &Stream{} }

// SetFlag activates a stream-control feature (codes < 64, see the
// Ctrl* constants). The egress side sets it when it announces the
// control; the ingress side sets it from FrameReader's OnControl.
func (s *Stream) SetFlag(code uint64) {
	s.mu.Lock()
	if code < 64 {
		s.flags |= 1 << code
	}
	s.mu.Unlock()
}

// HasFlag reports whether a stream-control feature is active. Safe on
// a nil Stream (always false).
func (s *Stream) HasFlag(code uint64) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return code < 64 && s.flags&(1<<code) != 0
}

// Value returns the stream's state under key, creating it with mk on
// first use (atomically — concurrent callers observe one instance).
// Codecs key with unexported struct types, so streams stay opaque
// across packages.
func (s *Stream) Value(key any, mk func() any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.vals == nil {
		s.vals = make(map[any]any)
	}
	v, ok := s.vals[key]
	if !ok {
		v = mk()
		s.vals[key] = v
	}
	return v
}

// MaxUniverse bounds the resource-universe size a decoded set may
// declare. It is far above any configuration this repository runs and
// exists only so that a hostile frame cannot demand a gigantic bitset.
const MaxUniverse = 1 << 20

// Enc is an append-only binary encoder. The zero value is ready to use;
// Bytes returns the accumulated buffer.
type Enc struct {
	buf  []byte
	strm *Stream // per-connection codec state; nil off-stream
}

// Stream reports the per-connection codec context this encode runs
// under (nil when encoding outside a connection, e.g. samples/tools).
func (e *Enc) Stream() *Stream { return e.strm }

// Bytes returns the encoded buffer.
func (e *Enc) Bytes() []byte { return e.buf }

// Reset truncates the buffer, keeping its capacity for reuse.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// Uvarint appends an unsigned varint.
func (e *Enc) Uvarint(u uint64) { e.buf = binary.AppendUvarint(e.buf, u) }

// Varint appends a zig-zag signed varint.
func (e *Enc) Varint(i int64) { e.buf = binary.AppendVarint(e.buf, i) }

// Bool appends one byte, 0 or 1.
func (e *Enc) Bool(b bool) {
	if b {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// F64 appends the IEEE 754 bit pattern of f, little-endian.
func (e *Enc) F64(f float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(f))
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Node appends a node identifier (which may be network.None).
func (e *Enc) Node(id network.NodeID) { e.Varint(int64(id)) }

// Nodes appends a length-prefixed slice of node identifiers.
func (e *Enc) Nodes(v []network.NodeID) {
	e.Uvarint(uint64(len(v)))
	for _, id := range v {
		e.Node(id)
	}
}

// Int64s appends a length-prefixed slice of signed integers.
func (e *Enc) Int64s(v []int64) {
	e.Uvarint(uint64(len(v)))
	for _, x := range v {
		e.Varint(x)
	}
}

// Message appends a nested message as a length-prefixed frame in the
// stateless (nil-Stream) encoding. Stateless on purpose: envelope
// kinds that may retransmit a frame (the transport's reliable-delivery
// layer) need re-encoding to be byte-identical and duplicates to be
// side-effect free, which per-stream codec state (delta caches) would
// break. Panics on an unregistered kind — the envelope's encoder is
// only ever handed messages the protocol itself produced.
func (e *Enc) Message(m network.Message) {
	b, err := Append(nil, m)
	if err != nil {
		panic(err)
	}
	e.Uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Set appends a resource set: universe size, member count, then the
// members as deltas (ascending order makes deltas small).
func (e *Enc) Set(s resource.Set) {
	e.Uvarint(uint64(s.Universe()))
	e.Uvarint(uint64(s.Len()))
	prev := resource.ID(0)
	s.ForEach(func(id resource.ID) {
		e.Uvarint(uint64(id - prev))
		prev = id
	})
}

// Dec decodes a buffer written by Enc. Errors are sticky: after the
// first malformed field every subsequent read returns a zero value, so
// decoders can run straight through and check Err once at the end.
type Dec struct {
	buf []byte
	off int
	err error

	// alloc charges decoded allocations against a budget derived from
	// the input size, so short hostile inputs cannot demand huge memory.
	alloc int

	// nodes/resources, when positive, are the cluster shape inbound
	// frames must conform to: site ids in [0, nodes), resource ids in
	// [0, resources), set universes equal to resources. A frame from a
	// peer configured with a different shape then fails decoding
	// instead of crashing a protocol state machine on a bad index.
	nodes, resources int

	strm *Stream // per-connection codec state; nil off-stream
}

// Stream reports the per-connection codec context this decode runs
// under (nil when decoding outside a connection).
func (d *Dec) Stream() *Stream { return d.strm }

// NewDec starts decoding b. The decoder does not copy b; decoded
// messages may alias it, so callers must not reuse the buffer until the
// message is dead (the transport allocates a fresh frame per read).
func NewDec(b []byte) *Dec { return &Dec{buf: b} }

// NewDecFor is NewDec plus cluster-shape validation: nodes and
// resources bound the site and resource identifiers the input may
// carry (either may be 0 for "unchecked").
func NewDecFor(b []byte, nodes, resources int) *Dec {
	return &Dec{buf: b, nodes: nodes, resources: resources}
}

// Shape reports the cluster shape the decoder validates against
// (zeroes when unchecked), for codecs that validate vector lengths.
func (d *Dec) Shape() (nodes, resources int) { return d.nodes, d.resources }

// Err reports the first decoding error, or nil.
func (d *Dec) Err() error { return d.err }

// Remaining reports how many bytes are left to decode.
func (d *Dec) Remaining() int { return len(d.buf) - d.off }

// Rest returns the undecoded tail of the buffer (aliasing it), for
// framing layers that parse a header here and hand the payload on.
func (d *Dec) Rest() []byte { return d.buf[d.off:] }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
}

// Fail records a decoding error (keeping the first one), for message
// decoders that find a structurally valid but semantically impossible
// field — an out-of-range enum, say.
func (d *Dec) Fail(format string, args ...any) { d.fail(format, args...) }

// charge debits n bytes from the allocation budget, failing the decode
// when a frame demands memory out of proportion with its own size.
func (d *Dec) charge(n int) bool {
	d.alloc += n
	if d.alloc > 64*len(d.buf)+4096 {
		d.fail("allocation budget exceeded (%d bytes demanded by a %d-byte frame)", d.alloc, len(d.buf))
		return false
	}
	return true
}

// Charge debits n bytes from the decode's allocation budget on behalf
// of a message decoder about to preallocate (a slice of n/size
// elements, say). Decoders must call it before any length-driven make:
// Count only bounds a length by the remaining input, and element sizes
// amplify that by 10–100x. Reports false (failing the decode) when the
// budget is exhausted.
func (d *Dec) Charge(n int) bool { return d.charge(n) }

// Uvarint reads an unsigned varint.
func (d *Dec) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	u, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong uvarint at offset %d", d.off)
		return 0
	}
	d.off += n
	return u
}

// Varint reads a zig-zag signed varint.
func (d *Dec) Varint() int64 {
	if d.err != nil {
		return 0
	}
	i, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return i
}

// Bool reads one byte; anything but 0 or 1 is an error.
func (d *Dec) Bool() bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("truncated bool at offset %d", d.off)
		return false
	}
	b := d.buf[d.off]
	d.off++
	if b > 1 {
		d.fail("invalid bool byte %#x", b)
		return false
	}
	return b == 1
}

// F64 reads an IEEE 754 double.
func (d *Dec) F64() float64 {
	if d.err != nil {
		return 0
	}
	if d.Remaining() < 8 {
		d.fail("truncated float64 at offset %d", d.off)
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return f
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := d.Count()
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Node reads a node identifier that may be network.None (a nil father
// pointer or lender). Under shape validation, anything else must be a
// real site.
func (d *Dec) Node() network.NodeID {
	id := network.NodeID(d.Varint())
	if d.err == nil && id != network.None && (id < 0 || (d.nodes > 0 && int(id) >= d.nodes)) {
		d.fail("node id %d outside cluster of %d", id, d.nodes)
		return network.None
	}
	return id
}

// Site reads a node identifier that must name a real site — request
// initiators, queue entries, token destinations. None is rejected even
// without shape validation: protocol code indexes per-site vectors and
// sends messages by these values.
func (d *Dec) Site() network.NodeID {
	id := network.NodeID(d.Varint())
	if d.err == nil && (id < 0 || (d.nodes > 0 && int(id) >= d.nodes)) {
		d.fail("site id %d outside cluster of %d", id, d.nodes)
		return 0
	}
	return id
}

// Res reads a resource identifier, bounds-checked against the universe
// under shape validation and non-negative always.
func (d *Dec) Res() resource.ID {
	id := resource.ID(d.Varint())
	if d.err == nil && (id < 0 || (d.resources > 0 && int(id) >= d.resources)) {
		d.fail("resource id %d outside universe of %d", id, d.resources)
		return 0
	}
	return id
}

// Count reads a slice length and validates it against the remaining
// input: every encoded element costs at least one byte, so a count
// larger than what is left is a lie.
func (d *Dec) Count() int {
	n := d.Uvarint()
	if d.err != nil {
		return 0
	}
	if n > uint64(d.Remaining()) {
		d.fail("count %d exceeds %d remaining bytes", n, d.Remaining())
		return 0
	}
	return int(n)
}

// Nodes reads a slice of node identifiers; nil when empty. Entries are
// read as sites (visited lists and queues never carry None).
func (d *Dec) Nodes() []network.NodeID { return d.NodesPad(0) }

// NodesPad is Nodes with pad extra slots of capacity. Decoders use it
// when the consumer is entitled to extend the slice in place — a
// wire-decoded message is exclusively owned by its receiver, and the
// headroom turns the extension into a zero-allocation append (see
// core's visited-set ownership rule). The padding is charged against
// the allocation budget like the elements themselves.
func (d *Dec) NodesPad(pad int) []network.NodeID {
	n := d.Count()
	if d.err != nil || n == 0 {
		return nil
	}
	if !d.charge(8 * (n + pad)) {
		return nil
	}
	out := make([]network.NodeID, n, n+pad)
	for i := range out {
		out[i] = d.Site()
	}
	return out
}

// Int64s reads a slice of signed integers; nil when empty.
func (d *Dec) Int64s() []int64 {
	n := d.Count()
	if d.err != nil || n == 0 {
		return nil
	}
	if !d.charge(8 * n) {
		return nil
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = d.Varint()
	}
	return out
}

// Message reads a nested message appended by Enc.Message, decoding it
// under the same cluster-shape validation as the envelope (but a fresh
// allocation budget proportional to the nested frame, and no Stream —
// see Enc.Message for why nested encodings are stateless). Returns nil
// and fails the decode on any malformed nested frame.
func (d *Dec) Message() network.Message {
	n := d.Count()
	if d.err != nil {
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	m, err := DecodeFor(b, d.nodes, d.resources)
	if err != nil {
		d.fail("nested message: %v", err)
		return nil
	}
	return m
}

// Set reads a resource set, validating the universe bound, the member
// count, and that members stay inside the universe in ascending order.
func (d *Dec) Set() resource.Set {
	m := d.Uvarint()
	if d.err != nil {
		return resource.Set{}
	}
	if m > MaxUniverse {
		d.fail("set universe %d exceeds limit %d", m, MaxUniverse)
		return resource.Set{}
	}
	if d.resources > 0 && m != 0 && m != uint64(d.resources) {
		d.fail("set universe %d in a cluster of %d resources", m, d.resources)
		return resource.Set{}
	}
	n := d.Count()
	if d.err != nil {
		return resource.Set{}
	}
	if uint64(n) > m {
		d.fail("set with %d members over universe %d", n, m)
		return resource.Set{}
	}
	if !d.charge(int(m)/8 + 1) {
		return resource.Set{}
	}
	s := resource.NewSet(int(m))
	id := uint64(0)
	for i := 0; i < n; i++ {
		delta := d.Uvarint()
		if d.err != nil {
			return resource.Set{}
		}
		if i > 0 && delta == 0 {
			d.fail("set members not strictly ascending")
			return resource.Set{}
		}
		id += delta
		if id >= m {
			d.fail("set member %d outside universe %d", id, m)
			return resource.Set{}
		}
		s.Add(resource.ID(id))
	}
	return s
}
