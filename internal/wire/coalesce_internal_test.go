package wire

import (
	"bufio"
	"bytes"
	"testing"
	"time"
)

// TestAdaptController pins the adaptive flush scheduler's decisions
// deterministically (the flusher calls adapt with the same inputs):
// sustained small drains under pressure widen the delay to its bound,
// big drains or vanished pressure narrow it back to base.
func TestAdaptController(t *testing.T) {
	c := &Coalescer{delayBase: 0, delayMax: time.Millisecond}

	for i := 0; i < 64; i++ {
		c.adapt(1, true)
	}
	if c.delay != c.delayMax {
		t.Fatalf("delay = %v after sustained small flushes under pressure, want %v", c.delay, c.delayMax)
	}

	for i := 0; i < 64; i++ {
		c.adapt(64, true)
	}
	if c.delay != c.delayBase {
		t.Fatalf("delay = %v after sustained large flushes, want base %v", c.delay, c.delayBase)
	}

	// Pressure gone: even with small drains the delay must decay — a
	// lone frame per wakeup on an idle connection should not be held.
	c.delay, c.emaFrames = c.delayMax, 0
	for i := 0; i < 64; i++ {
		c.adapt(1, false)
	}
	if c.delay != c.delayBase {
		t.Fatalf("delay = %v with no pressure, want base %v", c.delay, c.delayBase)
	}

	// A non-zero base is the floor, not zero.
	c.delayBase, c.delayMax = 100*time.Microsecond, time.Millisecond
	c.delay, c.emaFrames = c.delayMax, 0
	for i := 0; i < 64; i++ {
		c.adapt(64, true)
	}
	if c.delay != c.delayBase {
		t.Fatalf("delay = %v, want floor %v", c.delay, c.delayBase)
	}
}

// TestFinishFrameLayout pins the owned-frame geometry: the length
// prefix lands right-aligned against the payload with at least
// headerReserve writable bytes before it for the envelope header.
func TestFinishFrameLayout(t *testing.T) {
	for _, size := range []int{0, 1, 127, 128, 300, 70000} {
		buf := make([]byte, FrameDataOff, FrameDataOff+size)
		for i := 0; i < size; i++ {
			buf = append(buf, byte(i))
		}
		off := FinishFrame(buf)
		if off < headerReserve {
			t.Fatalf("size %d: frame start %d leaves less than headerReserve=%d", size, off, headerReserve)
		}
		frame := buf[off:]
		// The frame must parse as uvarint(size) + payload.
		got, err := ReadFrame(bufio.NewReader(bytes.NewReader(frame)), 1<<20)
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if len(got) != size {
			t.Fatalf("size %d: decoded %d payload bytes", size, len(got))
		}
	}
}
