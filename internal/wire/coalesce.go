package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"net"
	"strings"
	"sync"
	"time"
)

// Coalescer turns a stream of per-message frames into batched writes:
// senders append frames (cheap, never blocking on the network) and a
// dedicated flusher goroutine drains everything queued since its last
// wakeup into one flush group — a single frame when one message is
// pending, a batch envelope when more are. With no flush delay
// configured, batching costs no added latency: it only kicks in
// exactly when the writer is already behind, which is when the
// per-write cost matters. A configurable micro-delay (SetFlushDelay)
// trades that bound for bigger batches, and the adaptive mode
// (SetFlushAdaptive) widens the delay only while small flushes pile up
// under high fan-in.
//
// Frames are held in the pooled buffers they were encoded into
// (AppendOwned transfers ownership; Append copies into one) and an
// envelope flush hands them to the connection as one vectored write
// (net.Buffers / writev) with the envelope header materialized
// in-place in the first frame's reserved prefix — no per-flush memcpy.
// SetVectored(false) restores the copy-assemble egress for
// before/after measurement.
//
// One Coalescer serves one connection. Senders may call Append
// concurrently; frame order is append order, which is what preserves
// FIFO per ordered node pair end to end. Close flushes what is queued
// and waits for the flusher to exit — close the underlying writer
// first if it may block forever.
type Coalescer struct {
	w io.Writer
	// onErr, when non-nil, is called once (from the flusher goroutine,
	// no Coalescer lock held) with the first write error.
	onErr   func(error)
	mu      sync.Mutex
	nonIdle sync.Cond // signaled on empty→non-empty and on close
	pending []span    // queued frames, append order
	closed  bool
	err     error

	// Byte budget (SetByteBudget): appenders block while the queued
	// bytes would exceed it — the bound that keeps a stalled peer from
	// growing this queue without limit. room wakes them as the flusher
	// drains (and on close/error, so nobody blocks forever).
	budget       int64
	pendingBytes int64
	room         sync.Cond

	// Credit window (SetWindow/AddCredit): the peer's advertised
	// receive window. The flusher spends credit as it writes and waits
	// on creditCond when the window is exhausted; CtrlWindow updates
	// from the peer replenish it.
	window     int64
	credit     int64
	creditCond sync.Cond
	// maxFrames, when positive, bounds how many frames one flush may
	// write together; 1 disables batching entirely (the pre-batching
	// wire behavior, kept measurable for before/after benchmarks).
	// Guarded by mu; the flusher samples it per drain.
	maxFrames int
	// vectored selects the writev egress for envelope flushes; off, the
	// group is copied into one contiguous buffer first (the pre-writev
	// behavior, kept measurable). Guarded by mu.
	vectored bool

	// Flush scheduling (guarded by mu). delay is the current
	// micro-delay the flusher sleeps after waking on a non-empty
	// queue; base/max bound it, and max > base enables the adaptive
	// controller (emaFrames tracks frames per drain).
	delay, delayBase, delayMax time.Duration
	emaFrames                  float64

	// preamble is written before the first flush — stream controls a
	// dialer announces ahead of any frame.
	preamble []byte

	// spare is the flusher's drained span slice handed back for reuse;
	// copyBuf/vecBufs are the flusher's private flush scratch.
	spare   []span
	copyBuf []byte
	vecBufs [][]byte

	stats CoalescerStats // guarded by mu

	closeCh chan struct{} // closed by Close; cuts a pending micro-delay short
	done    chan struct{} // closed when the flusher exits
}

// span is one queued frame: buf[off:] holds the complete frame
// (uvarint length prefix + payload) inside a pooled buffer that the
// flusher releases after the write. At least headerReserve writable
// bytes precede off, so an envelope flush can materialize its header
// right-aligned against the group's first frame and write with no
// copying.
type span struct {
	buf []byte
	off int
}

func (s span) frame() []byte { return s.buf[s.off:] }

// headerReserve is the room producers leave before a frame for the
// largest possible batch envelope header, so a flush can materialize
// the header in place and issue one contiguous (or vectored) write
// with no copying.
const headerReserve = 1 + binary.MaxVarintLen64

// FrameDataOff is where producers of owned frames must start appending
// their encoded payload into a pooled buffer (GetFrame): enough room
// is reserved before it for the frame's own length prefix
// (FinishFrame right-aligns it) and, when the frame opens a batch
// envelope, the envelope header.
const FrameDataOff = headerReserve + binary.MaxVarintLen64

// FinishFrame materializes the length prefix of a frame whose payload
// occupies buf[FrameDataOff:], right-aligned against the payload, and
// returns the offset where the finished frame starts — the off to hand
// to AppendOwned.
func FinishFrame(buf []byte) int {
	n := uint64(len(buf) - FrameDataOff)
	off := FrameDataOff - uvarintLen(n)
	binary.PutUvarint(buf[off:], n)
	return off
}

// VectorWriter is the writer-side hook for vectored egress: one call
// consumes one batch of buffers. Real sockets do not need it — the
// coalescer hands them net.Buffers (writev) directly — but conn
// wrappers and tests implement it to observe or perturb the vectored
// path. Like Write, a short count with a nil error is tolerated by the
// caller (the remainder is retried), never trusted.
type VectorWriter interface {
	WriteVec(bufs [][]byte) (int, error)
}

// CoalescerStats counts a coalescing writer's egress. Writes is the
// syscall proxy the benchmarks compare: how many Write (or vectored
// write) calls reached the underlying connection.
type CoalescerStats struct {
	Writes  int64 // write calls issued on the underlying writer
	Flushes int64 // flush groups (each one frame or one batch envelope)
	Batches int64 // flush groups that used a batch envelope (≥2 frames)
	Frames  int64 // frames written
	Bytes   int64 // bytes written, envelope headers included
	// Stalls counts backpressure events: appends that blocked on the
	// byte budget, plus flushes that waited for window credit.
	Stalls int64
	// Hist buckets flush groups by frame count:
	// 1, 2–3, 4–7, 8–15, 16–31, 32–63, 64–127, ≥128.
	Hist [8]int64
}

// histBucket maps a flush's frame count to its histogram bucket.
func histBucket(frames int) int {
	b := bits.Len(uint(frames)) - 1
	if b > 7 {
		b = 7
	}
	return b
}

// Add accumulates o into s.
func (s *CoalescerStats) Add(o CoalescerStats) {
	s.Writes += o.Writes
	s.Flushes += o.Flushes
	s.Batches += o.Batches
	s.Frames += o.Frames
	s.Bytes += o.Bytes
	s.Stalls += o.Stalls
	for i, v := range o.Hist {
		s.Hist[i] += v
	}
}

// HistString renders the non-empty histogram buckets, e.g.
// "1:120 2-3:31 8-15:2".
func (s CoalescerStats) HistString() string {
	labels := [8]string{"1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+"}
	var sb strings.Builder
	for i, v := range s.Hist {
		if v == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s:%d", labels[i], v)
	}
	return sb.String()
}

// NewCoalescer starts a coalescing writer over w. maxFrames bounds the
// frames per flush (0 = unbounded, 1 = no batching); onErr may be nil.
// Vectored egress is on by default; the flush delay is zero.
func NewCoalescer(w io.Writer, maxFrames int, onErr func(error)) *Coalescer {
	c := &Coalescer{
		w: w, onErr: onErr, maxFrames: maxFrames, vectored: true,
		closeCh: make(chan struct{}), done: make(chan struct{}),
	}
	c.nonIdle.L = &c.mu
	c.room.L = &c.mu
	c.creditCond.L = &c.mu
	go c.flusher()
	return c
}

// SetByteBudget bounds the bytes queued behind the flusher (0, the
// default, is unbounded — the pre-flow-control behavior). An Append
// that would push the queue past the budget blocks until the flusher
// drains (or the coalescer closes or errors); a frame is always
// admitted into an empty queue, so the actual bound is budget plus one
// frame. This is the sender-side half of end-to-end flow control: a
// stalled peer costs bounded memory and blocked senders, never an OOM.
func (c *Coalescer) SetByteBudget(n int64) {
	c.mu.Lock()
	c.budget = n
	c.room.Broadcast()
	c.mu.Unlock()
}

// QueuedBytes reports the frame bytes currently queued behind the
// flusher (the quantity SetByteBudget bounds).
func (c *Coalescer) QueuedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pendingBytes
}

// SetWindow arms credit-based flow control with the peer's advertised
// receive window (hello negotiation): the flusher spends the window as
// it writes and waits for CtrlWindow credits (AddCredit) when it is
// exhausted. Zero (the default) disables crediting. Call before the
// first Append.
func (c *Coalescer) SetWindow(n int64) {
	c.mu.Lock()
	c.window = n
	c.credit = n
	c.creditCond.Broadcast()
	c.mu.Unlock()
}

// AddCredit returns n consumed bytes of window credit (a CtrlWindow
// update from the peer), waking a flusher waiting for it.
func (c *Coalescer) AddCredit(n int64) {
	c.mu.Lock()
	c.credit += n
	c.creditCond.Broadcast()
	c.mu.Unlock()
}

// waitCredit blocks until at least min(n, window) bytes of credit are
// available, then reserves nothing — chargeCredit settles the exact
// written byte count afterwards. A closed or failed coalescer never
// waits (Close must be able to drain against a dead peer; the write
// deadline bounds that attempt instead).
func (c *Coalescer) waitCredit(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.window <= 0 {
		return
	}
	if n > c.window {
		n = c.window // a group larger than the window must still move
	}
	waited := false
	for c.credit < n && !c.closed && c.err == nil {
		if !waited {
			waited = true
			c.stats.Stalls++
		}
		c.creditCond.Wait()
	}
}

// chargeCredit spends written bytes against the window.
func (c *Coalescer) chargeCredit(n int64) {
	c.mu.Lock()
	if c.window > 0 {
		c.credit -= n
	}
	c.mu.Unlock()
}

// SetMaxFrames adjusts the per-flush frame bound (0 = unbounded, 1 =
// no batching). It affects flushes after the call; frames already
// queued flush under the new bound.
func (c *Coalescer) SetMaxFrames(n int) {
	c.mu.Lock()
	c.maxFrames = n
	c.mu.Unlock()
}

// SetVectored toggles the writev egress for envelope flushes (on by
// default). Off, the group is assembled into one contiguous buffer and
// written whole — the pre-writev behavior, kept so benchmarks can
// measure the vectored win on identical workloads.
func (c *Coalescer) SetVectored(on bool) {
	c.mu.Lock()
	c.vectored = on
	c.mu.Unlock()
}

// SetFlushDelay fixes the micro-delay the flusher waits after waking
// on a non-empty queue before draining — frames arriving inside the
// window join the same flush. Zero (the default) restores
// flush-on-wakeup; the delay bounds the latency a queued frame can be
// held. Disables the adaptive mode.
func (c *Coalescer) SetFlushDelay(d time.Duration) {
	c.mu.Lock()
	c.delay, c.delayBase, c.delayMax = d, d, d
	c.mu.Unlock()
}

// SetFlushAdaptive enables the adaptive flush scheduler: the
// micro-delay starts at base and widens toward max while flushes stay
// small with new frames already queued behind the write (many small
// flushes under high fan-in — exactly when widening buys batching),
// narrowing back as batches grow or the pressure vanishes. max must
// exceed base to enable; max bounds the latency a frame can be held.
func (c *Coalescer) SetFlushAdaptive(base, max time.Duration) {
	c.mu.Lock()
	c.delay, c.delayBase, c.delayMax = base, base, max
	c.emaFrames = 0
	c.mu.Unlock()
}

// FlushDelay reports the current micro-delay (fixed, or the adaptive
// controller's present choice).
func (c *Coalescer) FlushDelay() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.delay
}

// SetPreamble queues raw stream bytes (controls built with
// AppendControl) to be written before the first flush. Call it before
// the first Append; the bytes are not retained beyond the first flush.
func (c *Coalescer) SetPreamble(b []byte) {
	c.mu.Lock()
	c.preamble = b
	c.mu.Unlock()
}

// Append queues one frame holding payload (the bytes are copied into a
// pooled buffer; the caller may recycle payload immediately). It
// reports false once the coalescer is closed or its connection has
// failed — the frame is then dropped, like a Send on a closed
// transport.
func (c *Coalescer) Append(payload []byte) bool {
	buf := GetFrame(headerReserve + binary.MaxVarintLen64 + len(payload))
	buf = buf[:headerReserve]
	buf = AppendFrame(buf, payload)
	return c.append(span{buf: buf, off: headerReserve})
}

// AppendOwned queues one finished frame, taking ownership of buf — a
// pooled buffer whose payload was appended from FrameDataOff and whose
// length prefix FinishFrame put at off. The coalescer releases buf to
// the frame pool after the write (or on refusal); the caller must not
// touch it again. This is the zero-copy egress path: the encoded bytes
// are written from this very buffer.
func (c *Coalescer) AppendOwned(buf []byte, off int) bool {
	if off < headerReserve || off >= len(buf) {
		panic(fmt.Sprintf("wire: AppendOwned offset %d outside [%d, %d)", off, headerReserve, len(buf)))
	}
	return c.append(span{buf: buf, off: off})
}

func (c *Coalescer) append(s span) bool {
	size := int64(len(s.frame()))
	c.mu.Lock()
	// Byte budget: block while admitting this frame would overflow it.
	// A frame is always admitted into an empty queue (otherwise a frame
	// larger than the budget could never move), so the bound is budget
	// plus one frame. Close and write errors wake every waiter.
	waited := false
	for c.budget > 0 && c.pendingBytes > 0 && c.pendingBytes+size > c.budget &&
		!c.closed && c.err == nil {
		if !waited {
			waited = true
			c.stats.Stalls++
		}
		c.room.Wait()
	}
	if c.closed || c.err != nil {
		c.mu.Unlock()
		ReleaseFrame(s.buf)
		return false
	}
	c.pending = append(c.pending, s)
	c.pendingBytes += size
	if len(c.pending) == 1 {
		// Only an empty→non-empty edge can find the flusher parked.
		c.nonIdle.Signal()
	}
	c.mu.Unlock()
	return true
}

// Err reports the first write error, or nil.
func (c *Coalescer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Stats snapshots the egress counters.
func (c *Coalescer) Stats() CoalescerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close flushes anything still queued (cutting a pending micro-delay
// short), stops the flusher, and returns the first write error, if
// any. Idempotent.
//
// Close waits for the flusher to exit, so a flusher stuck in a Write
// that never returns blocks it forever — close the underlying
// connection first, set a write deadline on it, or use CloseWithin.
func (c *Coalescer) Close() error {
	c.beginClose()
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// ErrCloseTimeout reports a CloseWithin that gave up waiting for the
// flusher: the close is committed (no more frames will be accepted)
// but the flusher is still stuck in a write and frames may be lost
// when the connection dies.
var ErrCloseTimeout = errors.New("wire: coalescer close timed out awaiting flusher")

// CloseWithin is Close bounded by a deadline: it commits the close,
// then waits at most d for the flusher to drain and exit. On timeout
// it returns ErrCloseTimeout and abandons the flusher — which exits on
// its own as soon as its blocked write returns, releasing every queued
// frame either way. Callers tearing down a connection that may be
// wedged (a peer that stopped reading and ignores deadlines) use this
// so shutdown latency is bounded by d, not by the peer. d <= 0 waits
// forever, exactly like Close. Idempotent and safe to mix with Close.
func (c *Coalescer) CloseWithin(d time.Duration) error {
	c.beginClose()
	if d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-c.done:
		case <-t.C:
			return ErrCloseTimeout
		}
	} else {
		<-c.done
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// beginClose commits the close: no more appends are accepted, the
// flusher is woken to drain what is queued, and everyone blocked on
// flow control is released.
func (c *Coalescer) beginClose() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.closeCh)
		c.nonIdle.Signal()
		// Wake appenders blocked on the budget and a flusher waiting
		// for credit: a close must never deadlock on flow control.
		c.room.Broadcast()
		c.creditCond.Broadcast()
	}
	c.mu.Unlock()
}

// Adaptive flush controller constants: widen while drains average
// fewer than adaptSmallFrames frames with more already queued, narrow
// at adaptLargeFrames or when the queue drains dry.
const (
	adaptSmallFrames = 4.0
	adaptLargeFrames = 32.0
)

// flusher is the write-side goroutine: each wakeup (optionally held
// for the micro-delay) takes the whole queue in one swap and writes it
// out in as few writes as the limits allow.
func (c *Coalescer) flusher() {
	defer close(c.done)
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		c.mu.Lock()
		for len(c.pending) == 0 && !c.closed {
			c.nonIdle.Wait()
		}
		if len(c.pending) == 0 { // closed and drained
			c.mu.Unlock()
			return
		}
		delay, closed := c.delay, c.closed
		c.mu.Unlock()

		if delay > 0 && !closed {
			// Micro-delay: let more frames join this drain. Close cuts
			// the wait short so shutdown latency stays bounded by the
			// write, not the delay.
			if timer == nil {
				timer = time.NewTimer(delay)
			} else {
				timer.Reset(delay)
			}
			select {
			case <-timer.C:
			case <-c.closeCh:
				if !timer.Stop() {
					<-timer.C
				}
			}
		}

		c.mu.Lock()
		spans := c.pending
		maxFrames, vectored := c.maxFrames, c.vectored
		c.pending, c.spare = c.spare[:0], nil
		pre := c.preamble
		c.preamble = nil
		c.mu.Unlock()

		var drained int64
		for _, s := range spans {
			drained += int64(len(s.frame()))
		}
		var st CoalescerStats
		var err error
		if len(pre) > 0 {
			before := st.Bytes
			c.waitCredit(int64(len(pre)))
			err = c.write(&st, nil, pre)
			c.chargeCredit(st.Bytes - before)
		}
		if err == nil {
			err = c.writeOut(&st, spans, maxFrames, vectored)
		}
		for i := range spans {
			ReleaseFrame(spans[i].buf)
			spans[i] = span{}
		}

		c.mu.Lock()
		c.stats.Add(st)
		c.spare = spans[:0]
		// The drained frames are written (or lost to the error below)
		// and their buffers released either way: the budget no longer
		// holds them against appenders.
		c.pendingBytes -= drained
		c.room.Broadcast()
		if c.delayMax > c.delayBase {
			c.adapt(len(spans), len(c.pending) > 0)
		}
		if err != nil && c.err == nil {
			c.err = err
		}
		c.mu.Unlock()
		if err != nil {
			// The connection is broken; nothing more will be written.
			// Frames that raced in behind the drain would leak their
			// pooled buffers — release them (append refuses from now on).
			c.mu.Lock()
			stale := c.pending
			c.pending = nil
			c.pendingBytes = 0
			c.room.Broadcast()
			c.creditCond.Broadcast()
			c.mu.Unlock()
			for _, s := range stale {
				ReleaseFrame(s.buf)
			}
			if c.onErr != nil {
				c.onErr(err)
			}
			return
		}
	}
}

// adapt is the adaptive flush controller (mu held): drained is the
// frame count of the drain just written, pressure whether new frames
// were already queued behind it.
func (c *Coalescer) adapt(drained int, pressure bool) {
	c.emaFrames = 0.75*c.emaFrames + 0.25*float64(drained)
	switch {
	case pressure && c.emaFrames < adaptSmallFrames:
		d := c.delay * 2
		if d == 0 {
			if d = c.delayMax / 16; d == 0 {
				d = c.delayMax
			}
		}
		if d > c.delayMax {
			d = c.delayMax
		}
		c.delay = d
	case !pressure || c.emaFrames >= adaptLargeFrames:
		d := c.delay / 2
		if d < c.delayBase {
			d = c.delayBase
		}
		c.delay = d
	}
}

// writeOut writes the drained queue: frames are grouped into flushes
// of at most maxFrames frames and MaxEnvelope bytes, each flush one
// single-frame write or one batch envelope (vectored or copied).
func (c *Coalescer) writeOut(st *CoalescerStats, spans []span, maxFrames int, vectored bool) error {
	first := 0
	for first < len(spans) {
		// Grow the group while the limits allow.
		last, size := first, len(spans[first].frame())
		for last+1 < len(spans) &&
			(maxFrames <= 0 || last+1-first < maxFrames) &&
			size+len(spans[last+1].frame()) <= MaxEnvelope {
			last++
			size += len(spans[last].frame())
		}
		frames := last + 1 - first
		// Flow control: hold the group until the peer's window has room
		// for it (plus the envelope header), then settle the exact
		// written byte count against the credit.
		c.waitCredit(int64(size) + headerReserve)
		before := st.Bytes
		var err error
		switch {
		case frames == 1:
			// Single-buffer fast path: the frame is already contiguous
			// in its own buffer; one legacy-format write.
			err = c.write(st, nil, spans[first].frame())
		case vectored:
			err = c.writeVec(st, spans[first:last+1], size)
		default:
			err = c.writeCopy(st, spans[first:last+1], size)
		}
		c.chargeCredit(st.Bytes - before)
		st.Flushes++
		st.Frames += int64(frames)
		st.Hist[histBucket(frames)]++
		if frames > 1 {
			st.Batches++
		}
		if err != nil {
			return err
		}
		first = last + 1
	}
	return nil
}

// writeVec writes one batch envelope as a vectored write: the envelope
// header is materialized in the reserved prefix of the group's first
// frame (right-aligned, in place) and the frame buffers go to the
// writer as one batch — no memcpy between encode and syscall.
func (c *Coalescer) writeVec(st *CoalescerStats, group []span, size int) error {
	s0 := group[0]
	h := s0.off - 1 - uvarintLen(uint64(size))
	s0.buf[h] = 0
	binary.PutUvarint(s0.buf[h+1:s0.off], uint64(size))
	bufs := c.vecBufs[:0]
	bufs = append(bufs, s0.buf[h:])
	for _, s := range group[1:] {
		bufs = append(bufs, s.frame())
	}
	c.vecBufs = bufs
	return c.vwrite(st, bufs)
}

// vwrite pushes a buffer batch to the writer, tolerating partial
// writes explicitly across and within buffers. Real sockets take the
// net.Buffers path (writev); VectorWriter implementations get the
// whole batch per call; plain writers get one careful Write per
// buffer. net.Buffers' own io.Writer fallback is deliberately not
// used: it trusts the Write contract, and a short write with a nil
// error would silently desync the framed stream.
func (c *Coalescer) vwrite(st *CoalescerStats, bufs [][]byte) error {
	for len(bufs) > 0 {
		var n int64
		var err error
		switch w := c.w.(type) {
		case VectorWriter:
			var k int
			k, err = w.WriteVec(bufs)
			n = int64(k)
			bufs = consumeBufs(bufs, n)
		case *net.TCPConn, *net.UnixConn:
			nb := net.Buffers(bufs)
			n, err = nb.WriteTo(c.w)
			bufs = nb
		default:
			var k int
			k, err = c.w.Write(bufs[0])
			n = int64(k)
			bufs = consumeBufs(bufs, n)
		}
		st.Writes++
		st.Bytes += n
		if err != nil {
			return err
		}
		if n == 0 && len(bufs) > 0 {
			return io.ErrShortWrite // refuse to spin on a stuck writer
		}
	}
	return nil
}

// consumeBufs drops n written bytes off the front of bufs.
func consumeBufs(bufs [][]byte, n int64) [][]byte {
	for n > 0 && len(bufs) > 0 {
		if n < int64(len(bufs[0])) {
			bufs[0] = bufs[0][n:]
			return bufs
		}
		n -= int64(len(bufs[0]))
		bufs = bufs[1:]
	}
	return bufs
}

// writeCopy is the vectored-off twin: the group is assembled —
// envelope header, then every frame — into one reused contiguous
// buffer and written whole (the pre-writev egress, kept measurable).
func (c *Coalescer) writeCopy(st *CoalescerStats, group []span, size int) error {
	buf := c.copyBuf[:0]
	buf = append(buf, 0)
	buf = binary.AppendUvarint(buf, uint64(size))
	for _, s := range group {
		buf = append(buf, s.frame()...)
	}
	c.copyBuf = buf
	return c.write(st, nil, buf)
}

// write pushes hdr (optional) then body to the writer, tolerating
// partial writes explicitly: an io.Writer must error when it writes
// short, but a flaky conn wrapper may not, and a framed stream cannot
// afford to drop a suffix silently.
func (c *Coalescer) write(st *CoalescerStats, hdr, body []byte) error {
	for _, b := range [2][]byte{hdr, body} {
		for len(b) > 0 {
			n, err := c.w.Write(b)
			st.Writes++
			st.Bytes += int64(n)
			b = b[n:]
			if err != nil {
				return err
			}
			if n == 0 && len(b) > 0 {
				return io.ErrShortWrite // refuse to spin on a stuck writer
			}
		}
	}
	return nil
}
