package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"strings"
	"sync"
)

// Coalescer turns a stream of per-message frames into batched writes:
// senders append frames (cheap, never blocking on the network) and a
// dedicated flusher goroutine drains everything queued since its last
// wakeup into one write — a single frame when one message is pending,
// a batch envelope when more are. Batching therefore costs no added
// latency: it only kicks in exactly when the writer is already behind,
// which is when the per-write cost matters.
//
// One Coalescer serves one connection. Senders may call Append
// concurrently; frame order is append order, which is what preserves
// FIFO per ordered node pair end to end. Close flushes what is queued
// and waits for the flusher to exit — close the underlying writer
// first if it may block forever.
type Coalescer struct {
	w io.Writer
	// onErr, when non-nil, is called once (from the flusher goroutine,
	// no Coalescer lock held) with the first write error.
	onErr   func(error)
	mu      sync.Mutex
	nonIdle sync.Cond // signaled on empty→non-empty and on close
	pending []byte    // queued frames, after a headerReserve prefix
	marks   []int     // frame-end offsets into pending
	closed  bool
	err     error
	// maxFrames, when positive, bounds how many frames one flush may
	// write together; 1 disables batching entirely (the pre-batching
	// wire behavior, kept measurable for before/after benchmarks).
	// Guarded by mu; the flusher samples it per drain.
	maxFrames int

	// spare is the flusher's drained buffer handed back for reuse:
	// appends and the in-flight write never share a buffer.
	spareBuf   []byte
	spareMarks []int

	stats CoalescerStats // guarded by mu

	done chan struct{} // closed when the flusher exits
}

// headerReserve prefixes the pending buffer with room for the largest
// possible batch envelope header, so a flush can materialize the
// header in place (right-aligned against the first frame) and issue
// one contiguous write with no copying.
const headerReserve = 1 + binary.MaxVarintLen64

// CoalescerStats counts a coalescing writer's egress. Writes is the
// syscall proxy the benchmarks compare: how many Write calls reached
// the underlying connection.
type CoalescerStats struct {
	Writes  int64 // Write calls issued on the underlying writer
	Flushes int64 // flush groups (each one frame or one batch envelope)
	Batches int64 // flush groups that used a batch envelope (≥2 frames)
	Frames  int64 // frames written
	Bytes   int64 // bytes written, envelope headers included
	// Hist buckets flush groups by frame count:
	// 1, 2–3, 4–7, 8–15, 16–31, 32–63, 64–127, ≥128.
	Hist [8]int64
}

// histBucket maps a flush's frame count to its histogram bucket.
func histBucket(frames int) int {
	b := bits.Len(uint(frames)) - 1
	if b > 7 {
		b = 7
	}
	return b
}

// Add accumulates o into s.
func (s *CoalescerStats) Add(o CoalescerStats) {
	s.Writes += o.Writes
	s.Flushes += o.Flushes
	s.Batches += o.Batches
	s.Frames += o.Frames
	s.Bytes += o.Bytes
	for i, v := range o.Hist {
		s.Hist[i] += v
	}
}

// HistString renders the non-empty histogram buckets, e.g.
// "1:120 2-3:31 8-15:2".
func (s CoalescerStats) HistString() string {
	labels := [8]string{"1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127", "128+"}
	var sb strings.Builder
	for i, v := range s.Hist {
		if v == 0 {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s:%d", labels[i], v)
	}
	return sb.String()
}

// NewCoalescer starts a coalescing writer over w. maxFrames bounds the
// frames per flush (0 = unbounded, 1 = no batching); onErr may be nil.
func NewCoalescer(w io.Writer, maxFrames int, onErr func(error)) *Coalescer {
	c := &Coalescer{w: w, onErr: onErr, maxFrames: maxFrames, done: make(chan struct{})}
	c.nonIdle.L = &c.mu
	go c.flusher()
	return c
}

// SetMaxFrames adjusts the per-flush frame bound (0 = unbounded, 1 =
// no batching). It affects flushes after the call; frames already
// queued flush under the new bound.
func (c *Coalescer) SetMaxFrames(n int) {
	c.mu.Lock()
	c.maxFrames = n
	c.mu.Unlock()
}

// Append queues one frame holding payload (the bytes are copied; the
// caller may recycle payload immediately). It reports false once the
// coalescer is closed or its connection has failed — the frame is then
// dropped, like a Send on a closed transport.
func (c *Coalescer) Append(payload []byte) bool {
	c.mu.Lock()
	if c.closed || c.err != nil {
		c.mu.Unlock()
		return false
	}
	if len(c.pending) < headerReserve {
		c.pending = c.reserve(c.pending)
	}
	c.pending = AppendFrame(c.pending, payload)
	c.marks = append(c.marks, len(c.pending))
	if len(c.marks) == 1 {
		// Only an empty→non-empty edge can find the flusher parked.
		c.nonIdle.Signal()
	}
	c.mu.Unlock()
	return true
}

// reserve (re)establishes the envelope-header prefix on an empty buffer.
func (c *Coalescer) reserve(buf []byte) []byte {
	if cap(buf) < headerReserve {
		return make([]byte, headerReserve, frameBufCap)
	}
	return buf[:headerReserve]
}

// Err reports the first write error, or nil.
func (c *Coalescer) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Stats snapshots the egress counters.
func (c *Coalescer) Stats() CoalescerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close flushes anything still queued, stops the flusher, and returns
// the first write error, if any. Idempotent.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		c.nonIdle.Signal()
	}
	c.mu.Unlock()
	<-c.done
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// flusher is the write-side goroutine: each wakeup takes the whole
// queue in one swap and writes it out in as few writes as the limits
// allow.
func (c *Coalescer) flusher() {
	defer close(c.done)
	for {
		c.mu.Lock()
		for len(c.marks) == 0 && !c.closed {
			c.nonIdle.Wait()
		}
		if len(c.marks) == 0 { // closed and drained
			c.mu.Unlock()
			return
		}
		buf, marks := c.pending, c.marks
		maxFrames := c.maxFrames
		c.pending, c.marks = c.spareBuf, c.spareMarks
		c.spareBuf, c.spareMarks = nil, nil
		c.mu.Unlock()

		stats, err := c.writeOut(buf, marks, maxFrames)

		c.mu.Lock()
		c.stats.Add(stats)
		c.spareBuf, c.spareMarks = buf[:0], marks[:0]
		if err != nil && c.err == nil {
			c.err = err
		}
		c.mu.Unlock()
		if err != nil {
			if c.onErr != nil {
				c.onErr(err)
			}
			return // the connection is broken; nothing more to write
		}
	}
}

// writeOut writes the drained queue: frames are grouped into flushes of
// at most maxFrames frames and MaxEnvelope bytes, each flush one
// single-frame write or one batch envelope.
func (c *Coalescer) writeOut(buf []byte, marks []int, maxFrames int) (CoalescerStats, error) {
	var st CoalescerStats
	start, first := headerReserve, 0
	for first < len(marks) {
		// Grow the group while the limits allow.
		last := first
		for last+1 < len(marks) &&
			(maxFrames <= 0 || last+1-first < maxFrames) &&
			marks[last+1]-start <= MaxEnvelope {
			last++
		}
		end := marks[last]
		frames := last + 1 - first
		var err error
		if frames == 1 {
			err = c.write(&st, nil, buf[start:end])
		} else if start == headerReserve {
			// First group: materialize the envelope header in the
			// reserved prefix for one contiguous write.
			h := start - uvarintLen(uint64(end-start)) - 1
			buf[h] = 0
			binary.PutUvarint(buf[h+1:], uint64(end-start))
			err = c.write(&st, nil, buf[h:end])
		} else {
			var hdr [headerReserve]byte
			n := binary.PutUvarint(hdr[1:], uint64(end-start))
			err = c.write(&st, hdr[:1+n], buf[start:end])
		}
		st.Flushes++
		st.Frames += int64(frames)
		st.Hist[histBucket(frames)]++
		if frames > 1 {
			st.Batches++
		}
		if err != nil {
			return st, err
		}
		start, first = end, last+1
	}
	return st, nil
}

// write pushes hdr (optional) then body to the writer, tolerating
// partial writes explicitly: an io.Writer must error when it writes
// short, but a flaky conn wrapper may not, and a framed stream cannot
// afford to drop a suffix silently.
func (c *Coalescer) write(st *CoalescerStats, hdr, body []byte) error {
	for _, b := range [2][]byte{hdr, body} {
		for len(b) > 0 {
			n, err := c.w.Write(b)
			st.Writes++
			st.Bytes += int64(n)
			b = b[n:]
			if err != nil {
				return err
			}
			if n == 0 && len(b) > 0 {
				return io.ErrShortWrite // refuse to spin on a stuck writer
			}
		}
	}
	return nil
}
