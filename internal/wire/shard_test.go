package wire

import (
	"encoding/binary"
	"testing"
)

func TestShardTagRoundTrip(t *testing.T) {
	for _, shard := range []int{0, 1, 2, 7, 255, MaxShards} {
		var buf []byte
		buf = AppendShardTag(buf, shard)
		buf = binary.AppendVarint(buf, 3) // from
		buf = binary.AppendVarint(buf, 5) // to
		if shard == 0 && len(buf) != 2 {
			t.Fatalf("shard 0 tag not byte-free: %d bytes", len(buf))
		}
		d := NewDecFor(buf, 8, 4)
		if got := d.ShardTag(); got != shard {
			t.Fatalf("shard %d decoded as %d", shard, got)
		}
		if from := d.Site(); from != 3 {
			t.Fatalf("shard %d: from %d", shard, from)
		}
		if to := d.Site(); to != 5 {
			t.Fatalf("shard %d: to %d", shard, to)
		}
		if d.Err() != nil {
			t.Fatalf("shard %d: %v", shard, d.Err())
		}
	}
}

func TestShardTagHostile(t *testing.T) {
	// varint(-1) is never encoded (shard 0 carries no tag), and a shard
	// beyond MaxShards must not demand per-shard state.
	for _, raw := range [][]byte{
		binary.AppendVarint(nil, -1),
		binary.AppendVarint(nil, int64(-1-(MaxShards+1))),
		{0x80}, // truncated varint
	} {
		d := NewDec(raw)
		d.ShardTag()
		if d.Err() == nil {
			t.Fatalf("tag %v accepted", raw)
		}
	}
}

// TestShardTagLegacyUnconsumed pins that reading a tag off an untagged
// frame consumes nothing: the from varint that follows must decode.
func TestShardTagLegacyUnconsumed(t *testing.T) {
	buf := binary.AppendVarint(nil, 0) // from = site 0
	buf = binary.AppendVarint(buf, 1)  // to
	d := NewDecFor(buf, 2, 1)
	if s := d.ShardTag(); s != 0 {
		t.Fatalf("tag %d on legacy frame", s)
	}
	if from := d.Site(); from != 0 || d.Err() != nil {
		t.Fatalf("from %d err %v", from, d.Err())
	}
}

func TestHelloShardsRoundTrip(t *testing.T) {
	h := Hello{Version: ProtoVersion, Nodes: 4, Resources: 12, Features: FeatDelta, Window: 1 << 16, Shards: 4}
	got, err := ParseHello(AppendHello(nil, h))
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("round trip %+v want %+v", got, h)
	}
	// A pre-shard hello ends after window; the shards field reads zero.
	legacy := binary.AppendUvarint(nil, ProtoVersion)
	legacy = binary.AppendUvarint(legacy, 4)
	legacy = binary.AppendUvarint(legacy, 12)
	legacy = binary.AppendUvarint(legacy, FeatDelta)
	legacy = binary.AppendUvarint(legacy, 1<<16)
	got, err = ParseHello(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != 0 {
		t.Fatalf("legacy hello shards %d", got.Shards)
	}
	// An absurd claimed shard count is rejected outright.
	bad := AppendHello(nil, Hello{Version: ProtoVersion})
	bad = bad[:len(bad)-1] // drop the appended shards=0
	bad = binary.AppendUvarint(bad, MaxShards+1)
	if _, err := ParseHello(bad); err == nil {
		t.Fatal("absurd shard count accepted")
	}
}
