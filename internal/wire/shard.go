package wire

import "encoding/binary"

// Shard frame tagging. A legacy frame body opens with varint(from) —
// and a frame's source is always a real site, never network.None, so
// the first varint of a legacy frame is never negative. That makes
// negative values a free escape code: a frame belonging to shard s > 0
// opens with varint(-1-s) ahead of the unchanged legacy header, and
// shard-0 frames carry no tag at all. A single-shard (or pre-shard)
// connection therefore stays byte-for-byte the legacy stream, and a
// legacy receiver that is handed a tagged frame fails the site
// validation loudly instead of misrouting it.

// MaxShards bounds the shard count a hello or a frame tag may claim,
// so a hostile peer cannot demand absurd per-shard state.
const MaxShards = 1 << 16

// AppendShardTag appends the shard tag opening a sharded frame body.
// Shard 0 appends nothing — the legacy encoding.
func AppendShardTag(dst []byte, shard int) []byte {
	if shard > 0 {
		dst = binary.AppendVarint(dst, int64(-1-shard))
	}
	return dst
}

// ShardTag reads the optional shard tag at the decoder's current
// position. A non-negative first varint is a legacy (shard 0) frame
// header and is left unconsumed; a tag varint is consumed and
// translated back to its shard id. Malformed tags (the never-encoded
// -1, or an absurd shard) fail the decode.
func (d *Dec) ShardTag() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated or overlong shard tag at offset %d", d.off)
		return 0
	}
	if v >= 0 {
		return 0
	}
	s := -1 - v
	if s < 1 || s > MaxShards {
		d.fail("invalid shard tag %d", v)
		return 0
	}
	d.off += n
	return int(s)
}
