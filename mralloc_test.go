package mralloc

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSimulateDefaults(t *testing.T) {
	rep, err := Simulate(SimConfig{Algorithm: CounterLoan, Duration: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Grants == 0 || rep.UseRate <= 0 || rep.UseRate > 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.WaitMean < 0 || rep.MsgPerGrant <= 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestSimulateAllAlgorithms(t *testing.T) {
	for _, a := range []Algorithm{Incremental, BouabdallahLaforest, CounterNoLoan, CounterLoan, SharedMemory} {
		rep, err := Simulate(SimConfig{
			Algorithm: a, Nodes: 8, Resources: 16, MaxRequestSize: 4,
			Duration: time.Second, Seed: 1,
		})
		if err != nil {
			t.Fatalf("%s: %v", a, err)
		}
		if rep.Grants == 0 {
			t.Fatalf("%s made no progress", a)
		}
	}
}

func TestSimulateUnknownAlgorithm(t *testing.T) {
	if _, err := Simulate(SimConfig{Algorithm: "nope"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSimulateHeadline(t *testing.T) {
	run := func(a Algorithm) Report {
		t.Helper()
		rep, err := Simulate(SimConfig{
			Algorithm: a, MaxRequestSize: 8, Rho: 0.5,
			Duration: 2 * time.Second, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	counter := run(CounterLoan)
	lock := run(BouabdallahLaforest)
	if counter.UseRate <= lock.UseRate {
		t.Errorf("counter use rate %.3f not above global lock %.3f", counter.UseRate, lock.UseRate)
	}
	if counter.WaitMean >= lock.WaitMean {
		t.Errorf("counter waiting %v not below global lock %v", counter.WaitMean, lock.WaitMean)
	}
}

func TestClusterEndToEnd(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 4, Resources: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.N() != 4 || c.M() != 8 {
		t.Fatalf("dims %d/%d", c.N(), c.M())
	}
	var wg sync.WaitGroup
	for node := 0; node < 4; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				release, err := c.Acquire(context.Background(), node, node%8, (node+1)%8)
				if err != nil {
					t.Error(err)
					return
				}
				release()
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, v := range c.Stats() {
		total += v
	}
	if total == 0 {
		t.Fatal("no protocol traffic recorded")
	}
}

// reservePorts grabs k distinct free loopback ports. The listeners are
// closed before returning, so a racing process could in principle steal
// one; on a CI loopback this window is negligible.
func reservePorts(t *testing.T, k int) []string {
	t.Helper()
	addrs := make([]string, k)
	lns := make([]net.Listener, k)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs
}

// TestClusterMultiProcess runs the public multi-process mode: two
// cluster instances (stand-ins for two OS processes), each hosting two
// nodes, exchanging every protocol message over loopback TCP.
func TestClusterMultiProcess(t *testing.T) {
	const n, m = 4, 8
	peers := make([]string, n)
	for i, a := range reservePorts(t, 2) {
		peers[2*i] = a
		peers[2*i+1] = a
	}
	a, err := NewCluster(ClusterConfig{Nodes: n, Resources: m, Peers: peers, Local: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewCluster(ClusterConfig{Nodes: n, Resources: m, Peers: peers, Local: []int{2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if _, err := a.Acquire(context.Background(), 2, 0); err == nil {
		t.Fatal("acquired a remote node through the wrong process")
	}
	var wg sync.WaitGroup
	for node := 0; node < n; node++ {
		node := node
		c := a
		if node >= 2 {
			c = b
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				release, err := c.Acquire(context.Background(), node, node%m, (node+3)%m)
				if err != nil {
					t.Errorf("node %d: %v", node, err)
					return
				}
				release()
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, stats := range []map[string]int64{a.Stats(), b.Stats()} {
		for _, v := range stats {
			total += v
		}
	}
	if total == 0 {
		t.Fatal("no protocol traffic recorded across processes")
	}
}

func TestClusterMultiProcessValidation(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Nodes: 2, Resources: 2, Peers: []string{"x"}}); err == nil {
		t.Fatal("peer/node count mismatch accepted")
	}
	if _, err := NewCluster(ClusterConfig{Nodes: 2, Resources: 2, Peers: []string{"a", "b"}}); err == nil {
		t.Fatal("missing Local accepted")
	}
	if _, err := NewCluster(ClusterConfig{
		Nodes: 2, Resources: 2, Peers: []string{"a", "b"}, Local: []int{0},
		Latency: time.Millisecond,
	}); err == nil {
		t.Fatal("latency + multi-process accepted")
	}
}

func TestClusterRejectsBaselines(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Nodes: 2, Resources: 2, Algorithm: SharedMemory}); err == nil {
		t.Fatal("shared-memory live cluster accepted")
	}
	if _, err := NewCluster(ClusterConfig{Nodes: 2, Resources: 2, Algorithm: Incremental}); err == nil {
		t.Fatal("incremental live cluster accepted")
	}
}

func TestClusterCustomThreshold(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 3, Resources: 6, LoanThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	release, err := c.Acquire(context.Background(), 2, 0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	release()
}

func TestLoanStatsRaceFree(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 4, Resources: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	for node := 0; node < 4; node++ {
		node := node
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				release, err := c.Acquire(context.Background(), node, node%6, (node+1)%6, (node+2)%6)
				if err != nil {
					t.Error(err)
					return
				}
				release()
			}
		}()
	}
	// Sample stats while traffic is in flight: must be race-free.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			s := c.LoanStats()
			if s.Asked < 0 || s.Granted > s.Asked+1 {
				t.Errorf("implausible stats %+v", s)
			}
			time.Sleep(time.Millisecond)
		}
	}()
	wg.Wait()
	<-done
	final := c.LoanStats()
	if final.Granted > final.Asked {
		t.Fatalf("granted %d > asked %d", final.Granted, final.Asked)
	}
}

// TestClusterSessions drives the public Session API: many sessions
// multiplexed onto few nodes under each policy, mutual exclusion
// checked with shared counters.
func TestClusterSessions(t *testing.T) {
	for _, policy := range []Policy{PolicyFIFO, PolicySSF, PolicyEDF} {
		policy := policy
		t.Run(string(policy), func(t *testing.T) {
			t.Parallel()
			const nodes, m, sessions, iters = 2, 6, 8, 6
			c, err := NewCluster(ClusterConfig{Nodes: nodes, Resources: m, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			holders := make([]atomic.Int32, m)
			var wg sync.WaitGroup
			for i := 0; i < sessions; i++ {
				i := i
				s, err := c.NewSession(i % nodes)
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer s.Close()
					for k := 0; k < iters; k++ {
						r1 := (i + k) % m
						r2 := (i + k + 1) % m
						release, err := s.AcquireWith(context.Background(), AcquireOpts{
							Resources: []int{r1, r2},
							Deadline:  time.Now().Add(time.Duration(i+1) * time.Second),
						})
						if err != nil {
							t.Errorf("session %d: %v", i, err)
							return
						}
						for _, r := range []int{r1, r2} {
							if got := holders[r].Add(1); got != 1 {
								t.Errorf("resource %d had %d holders", r, got)
							}
						}
						for _, r := range []int{r1, r2} {
							holders[r].Add(-1)
						}
						release()
					}
					if s.Grants() != iters {
						t.Errorf("session %d: %d grants, want %d", i, s.Grants(), iters)
					}
				}()
			}
			wg.Wait()
		})
	}
}

func TestClusterSessionErrors(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 1, Resources: 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.NewSession(0)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Acquire(context.Background(), 0); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("acquire on closed session: %v, want ErrSessionClosed", err)
	}
	if _, err := NewCluster(ClusterConfig{Nodes: 1, Resources: 1, Policy: "lifo"}); err == nil {
		t.Error("unknown policy accepted")
	}
	c.Close()
	if _, err := c.NewSession(0); !errors.Is(err, ErrClosed) {
		t.Errorf("session on closed cluster: %v, want ErrClosed", err)
	}
}

// TestClusterOptions: the functional options override the deprecated
// ClusterConfig tuning fields, bad values still error, and wire
// options are refused on in-process clusters (which have no wire).
func TestClusterOptions(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 2, Resources: 4, Policy: "lifo"}, WithPolicy(PolicySSF), WithAging(time.Second))
	if err != nil {
		t.Fatalf("WithPolicy did not override the deprecated field: %v", err)
	}
	c.Close()
	if _, err := NewCluster(ClusterConfig{Nodes: 2, Resources: 4}, WithPolicy("lifo")); err == nil {
		t.Error("unknown policy accepted via option")
	}
	if _, err := NewCluster(ClusterConfig{Nodes: 2, Resources: 4}, WithWire(WireConfig{Delta: true})); err == nil {
		t.Error("wire options accepted on an in-process cluster")
	}
	if _, err := NewCluster(ClusterConfig{Nodes: 2, Resources: 4}, WithWindow(1<<20)); err == nil {
		t.Error("window option accepted on an in-process cluster")
	}
}

// TestClusterAcquireAll: the batched all-or-nothing acquire spreads
// its sets over distinct nodes (one critical section per node) and the
// combined release hands everything back.
func TestClusterAcquireAll(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Nodes: 3, Resources: 6})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	release, err := c.AcquireAll(ctx, []int{0, 1}, []int{2}, []int{3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // idempotent
	for _, set := range [][]int{{0, 1}, {2}, {3, 4, 5}} {
		rel, err := c.Acquire(ctx, 0, set...)
		if err != nil {
			t.Fatalf("set %v stranded after AcquireAll release: %v", set, err)
		}
		rel()
	}
	// More sets than nodes: refused, nothing held.
	if _, err := c.AcquireAll(ctx, []int{0}, []int{1}, []int{2}, []int{3}); err == nil {
		t.Fatal("over-wide batch accepted")
	}
	rel, err := c.AcquireAll(ctx) // empty batch is a no-op
	if err != nil {
		t.Fatal(err)
	}
	rel()
}
