// Package mralloc is a distributed multi-resource allocation library:
// a production-shaped implementation of "Reducing synchronization cost
// in distributed multi-resource allocation problem" (Lejeune, Arantes,
// Sopena, Sens — INRIA RR-8689 / ICPP 2015).
//
// It offers two entry points:
//
//   - Simulate runs the paper's algorithms on a deterministic
//     discrete-event network and reports resource-use rate, waiting
//     times and message counts — the measurements of the paper's
//     evaluation. cmd/paperfig builds every figure on top of this.
//
//   - NewCluster starts a live lock manager: one goroutine per node,
//     running the paper's algorithm for real — in-process over the
//     in-memory transport by default, or spanning OS processes over
//     TCP (ClusterConfig.Peers; cmd/mrallocd is the ready-made
//     daemon). Acquire/Release give callers deadlock-free exclusive
//     access to arbitrary subsets of M resources with no global lock
//     and no prior knowledge of the conflict graph.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package mralloc

import (
	"fmt"
	"time"

	"mralloc/internal/alg"
	"mralloc/internal/core"
	"mralloc/internal/driver"
	"mralloc/internal/experiments"
	"mralloc/internal/sim"
	"mralloc/internal/workload"
)

// Algorithm selects one of the five systems of the paper's evaluation.
type Algorithm string

// The available algorithms.
const (
	// Incremental acquires resources in ascending identifier order with
	// one Naimi–Tréhel mutex per resource (baseline, domino effect).
	Incremental Algorithm = "incremental"
	// BouabdallahLaforest serializes registration through a global
	// control token (baseline, static scheduling).
	BouabdallahLaforest Algorithm = "bouabdallah-laforest"
	// CounterNoLoan is the paper's algorithm without the loan
	// mechanism ("Without loan").
	CounterNoLoan Algorithm = "counter-no-loan"
	// CounterLoan is the paper's full algorithm with loans ("With
	// loan", threshold 1). This is the recommended default.
	CounterLoan Algorithm = "counter-loan"
	// SharedMemory is the zero-communication scheduling bound ("in
	// shared memory"); simulation only.
	SharedMemory Algorithm = "shared-memory"
)

func (a Algorithm) factory() (alg.Factory, error) {
	switch a {
	case Incremental:
		return experiments.Factory(experiments.Incremental), nil
	case BouabdallahLaforest:
		return experiments.Factory(experiments.Bouabdallah), nil
	case CounterNoLoan:
		return experiments.Factory(experiments.WithoutLoan), nil
	case CounterLoan, "":
		return experiments.Factory(experiments.WithLoan), nil
	case SharedMemory:
		return experiments.Factory(experiments.SharedMem), nil
	default:
		return nil, fmt.Errorf("mralloc: unknown algorithm %q", a)
	}
}

// SimConfig parameterizes one simulated run (defaults reproduce the
// paper's testbed shape).
type SimConfig struct {
	Algorithm Algorithm

	Nodes     int // N; default 32
	Resources int // M; default 80
	// MaxRequestSize is φ: each request draws its size uniformly from
	// [1, φ]. Default 16.
	MaxRequestSize int
	// Rho is the paper's load ratio ρ = β/(α+γ); lower is heavier.
	// Default 0.5 (the paper's high-load regime).
	Rho float64
	// CSMin/CSMax bound the critical-section duration α(x). Defaults
	// 5 ms and 35 ms.
	CSMin, CSMax time.Duration
	// Latency is the one-way network latency γ. Default 600 µs.
	Latency time.Duration
	// Processing is the per-message service time δ at a receiving node
	// (deliveries to one node serialize). Zero selects the calibrated
	// default of 600 µs; negative disables the model entirely.
	Processing time.Duration

	// Duration is the simulated horizon (default 5 s); Warmup is
	// excluded from measurements (default 10% of Duration).
	Duration time.Duration
	Warmup   time.Duration

	Seed int64
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Nodes == 0 {
		c.Nodes = 32
	}
	if c.Resources == 0 {
		c.Resources = 80
	}
	if c.MaxRequestSize == 0 {
		c.MaxRequestSize = 16
	}
	if c.Rho == 0 {
		c.Rho = 0.5
	}
	if c.CSMin == 0 {
		c.CSMin = 5 * time.Millisecond
	}
	if c.CSMax == 0 {
		c.CSMax = 35 * time.Millisecond
	}
	if c.Latency == 0 {
		c.Latency = 600 * time.Microsecond
	}
	if c.Processing == 0 {
		c.Processing = 600 * time.Microsecond
	} else if c.Processing < 0 {
		c.Processing = 0
	}
	if c.Duration == 0 {
		c.Duration = 5 * time.Second
	}
	if c.Warmup == 0 {
		c.Warmup = c.Duration / 10
	}
	return c
}

// Report is what one simulated run measures.
type Report struct {
	// UseRate is the fraction of time resources spend inside critical
	// sections, in [0, 1] (the paper's primary metric).
	UseRate float64
	// WaitMean and WaitStdDev summarize request waiting time.
	WaitMean, WaitStdDev time.Duration
	// Grants is the number of completed critical-section admissions.
	Grants int
	// Messages counts protocol traffic by message kind.
	Messages map[string]int64
	// MsgPerGrant is total traffic divided by grants — the paper's
	// synchronization cost.
	MsgPerGrant float64
}

// Simulate runs one deterministic simulation.
func Simulate(cfg SimConfig) (Report, error) {
	cfg = cfg.withDefaults()
	factory, err := cfg.Algorithm.factory()
	if err != nil {
		return Report{}, err
	}
	res, err := driver.Run(driver.Config{
		Workload: workload.Config{
			N:        cfg.Nodes,
			M:        cfg.Resources,
			Phi:      cfg.MaxRequestSize,
			AlphaMin: sim.Time(cfg.CSMin),
			AlphaMax: sim.Time(cfg.CSMax),
			Gamma:    sim.Time(cfg.Latency),
			Rho:      cfg.Rho,
			Seed:     cfg.Seed,
		},
		Processing: sim.Time(cfg.Processing),
		Warmup:     sim.Time(cfg.Warmup),
		Horizon:    sim.Time(cfg.Duration),
	}, factory)
	if err != nil {
		return Report{}, err
	}
	rep := Report{
		UseRate:     res.UseRate,
		WaitMean:    time.Duration(res.Waiting.Mean * float64(time.Millisecond)),
		WaitStdDev:  time.Duration(res.Waiting.StdDev * float64(time.Millisecond)),
		Grants:      res.Grants,
		Messages:    res.Messages.ByKind,
		MsgPerGrant: res.MsgPerGrant,
	}
	return rep, nil
}

// coreOptions converts public knobs to core.Options (used by cluster.go).
func coreOptions(a Algorithm) (core.Options, bool) {
	switch a {
	case CounterLoan, "":
		return core.WithLoan(), true
	case CounterNoLoan:
		return core.WithoutLoan(), true
	default:
		return core.Options{}, false
	}
}
