package mralloc

import (
	"context"
	"fmt"
	"time"

	"mralloc/internal/alg"
	"mralloc/internal/core"
	"mralloc/internal/live"
)

// ClusterConfig sizes an in-process lock-manager cluster.
type ClusterConfig struct {
	// Nodes is the number of participants (each typically fronting one
	// shard, worker or tenant of the embedding application).
	Nodes int
	// Resources is the size M of the lockable universe.
	Resources int
	// Algorithm must be CounterLoan (default) or CounterNoLoan; the
	// baselines exist for simulation comparisons, not production use.
	Algorithm Algorithm
	// LoanThreshold overrides the loan trigger (default 1): a waiting
	// node missing at most this many resources asks to borrow them.
	LoanThreshold int
	// Latency, when positive, delays every message — useful to make
	// protocol behaviour visible in demos and tests.
	Latency time.Duration
}

// Cluster is a running in-process multi-resource lock manager. All
// methods are safe for concurrent use.
type Cluster struct {
	inner *live.Cluster
}

// LoanStats aggregates the loan mechanism's activity across nodes: how
// many loans were requested, granted, and bounced back (failed). All
// zeros under CounterNoLoan.
type LoanStats struct {
	Asked, Granted, Returned int
}

// NewCluster starts a cluster of protocol nodes.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	opt, ok := coreOptions(cfg.Algorithm)
	if !ok {
		return nil, fmt.Errorf("mralloc: algorithm %q not supported for live clusters", cfg.Algorithm)
	}
	if cfg.LoanThreshold > 0 {
		opt.Loan = true
		opt.LoanThreshold = cfg.LoanThreshold
	}
	inner, err := live.New(live.Config{
		Nodes:     cfg.Nodes,
		Resources: cfg.Resources,
		Latency:   cfg.Latency,
	}, core.NewFactory(opt))
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// LoanStats snapshots the loan mechanism's aggregate activity. Each
// node's counters are read inside its own event loop, so the snapshot
// is race-free (though nodes are sampled one after another).
func (c *Cluster) LoanStats() LoanStats {
	var s LoanStats
	for id := 0; id < c.inner.N(); id++ {
		c.inner.Inspect(id, func(nd alg.Node) {
			cs := nd.(*core.Node).Counters()
			s.Asked += cs.LoanAsks
			s.Granted += cs.LoansGranted
			s.Returned += cs.LoanReturns
		})
	}
	return s
}

// Acquire blocks until node holds exclusive access to every listed
// resource, then returns a release function (call it exactly once; it
// is idempotent). Deadlock cannot occur regardless of how callers
// overlap their resource sets — that is the algorithm's job. If ctx
// ends first, the eventual grant is released automatically.
func (c *Cluster) Acquire(ctx context.Context, node int, resources ...int) (func(), error) {
	return c.inner.Acquire(ctx, node, resources...)
}

// Stats snapshots protocol traffic by message kind.
func (c *Cluster) Stats() map[string]int64 { return c.inner.Stats() }

// N reports the number of nodes.
func (c *Cluster) N() int { return c.inner.N() }

// M reports the number of resources.
func (c *Cluster) M() int { return c.inner.M() }

// Close shuts the cluster down. Outstanding Acquire calls fail.
func (c *Cluster) Close() { c.inner.Close() }
