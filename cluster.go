package mralloc

import (
	"context"
	"fmt"
	"time"

	"mralloc/internal/alg"
	"mralloc/internal/core"
	"mralloc/internal/live"
	"mralloc/internal/transport"
)

// ClusterConfig sizes an in-process lock-manager cluster.
type ClusterConfig struct {
	// Nodes is the number of participants (each typically fronting one
	// shard, worker or tenant of the embedding application).
	Nodes int
	// Resources is the size M of the lockable universe.
	Resources int
	// Algorithm must be CounterLoan (default) or CounterNoLoan; the
	// baselines exist for simulation comparisons, not production use.
	Algorithm Algorithm
	// LoanThreshold overrides the loan trigger (default 1): a waiting
	// node missing at most this many resources asks to borrow them.
	LoanThreshold int
	// Latency, when positive, delays every message — useful to make
	// protocol behaviour visible in demos and tests. In-process
	// clusters only.
	Latency time.Duration

	// Peers switches the cluster to multi-process mode: Peers[i] is the
	// TCP address of the process hosting node i, and this process runs
	// the nodes listed in Local, exchanging protocol messages over the
	// wire (internal/wire binary codec, length-prefixed frames). Every
	// participating process must use the same Nodes, Resources,
	// Algorithm and Peers, and the Local sets must partition the nodes.
	// cmd/mrallocd is a ready-made daemon around exactly this mode.
	Peers []string
	// Local lists the node ids hosted by this process (required with
	// Peers). Acquire works only for local nodes.
	Local []int
	// Listen is this process's bind address. Empty defaults to
	// Peers[Local[0]]; set it when the advertised address differs from
	// the bindable one (e.g. listening on :port behind a hostname).
	Listen string
}

// Cluster is a running in-process multi-resource lock manager. All
// methods are safe for concurrent use.
type Cluster struct {
	inner *live.Cluster
}

// LoanStats aggregates the loan mechanism's activity across nodes: how
// many loans were requested, granted, and bounced back (failed). All
// zeros under CounterNoLoan.
type LoanStats struct {
	Asked, Granted, Returned int
}

// NewCluster starts a cluster of protocol nodes.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	opt, ok := coreOptions(cfg.Algorithm)
	if !ok {
		return nil, fmt.Errorf("mralloc: algorithm %q not supported for live clusters", cfg.Algorithm)
	}
	if cfg.LoanThreshold > 0 {
		opt.Loan = true
		opt.LoanThreshold = cfg.LoanThreshold
	}
	lcfg := live.Config{
		Nodes:     cfg.Nodes,
		Resources: cfg.Resources,
		Latency:   cfg.Latency,
	}
	if len(cfg.Peers) > 0 {
		if len(cfg.Peers) != cfg.Nodes {
			return nil, fmt.Errorf("mralloc: %d peer addresses for %d nodes", len(cfg.Peers), cfg.Nodes)
		}
		if len(cfg.Local) == 0 {
			return nil, fmt.Errorf("mralloc: multi-process mode needs Local node ids")
		}
		if cfg.Latency > 0 {
			return nil, fmt.Errorf("mralloc: Latency applies to in-process clusters only")
		}
		listen := cfg.Listen
		if listen == "" {
			if l := cfg.Local[0]; l >= 0 && l < len(cfg.Peers) {
				listen = cfg.Peers[l]
			}
		}
		tr, err := transport.ListenTCP(listen, cfg.Nodes, cfg.Local...)
		if err != nil {
			return nil, err
		}
		if err := tr.Connect(cfg.Peers); err != nil {
			tr.Close()
			return nil, err
		}
		lcfg.Transport = tr
		lcfg.Local = cfg.Local
	}
	inner, err := live.New(lcfg, core.NewFactory(opt))
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// LoanStats snapshots the loan mechanism's aggregate activity. Each
// node's counters are read inside its own event loop, so the snapshot
// is race-free (though nodes are sampled one after another).
func (c *Cluster) LoanStats() LoanStats {
	var s LoanStats
	for id := 0; id < c.inner.N(); id++ {
		c.inner.Inspect(id, func(nd alg.Node) {
			cs := nd.(*core.Node).Counters()
			s.Asked += cs.LoanAsks
			s.Granted += cs.LoansGranted
			s.Returned += cs.LoanReturns
		})
	}
	return s
}

// Acquire blocks until node holds exclusive access to every listed
// resource, then returns a release function (call it exactly once; it
// is idempotent). Deadlock cannot occur regardless of how callers
// overlap their resource sets — that is the algorithm's job. If ctx
// ends first, the eventual grant is released automatically.
func (c *Cluster) Acquire(ctx context.Context, node int, resources ...int) (func(), error) {
	return c.inner.Acquire(ctx, node, resources...)
}

// Stats snapshots protocol traffic by message kind.
func (c *Cluster) Stats() map[string]int64 { return c.inner.Stats() }

// N reports the number of nodes.
func (c *Cluster) N() int { return c.inner.N() }

// M reports the number of resources.
func (c *Cluster) M() int { return c.inner.M() }

// Close shuts the cluster down. Outstanding Acquire calls fail.
func (c *Cluster) Close() { c.inner.Close() }
