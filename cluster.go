package mralloc

import (
	"context"
	"fmt"
	"time"

	"mralloc/internal/alg"
	"mralloc/internal/core"
	"mralloc/internal/live"
	"mralloc/internal/serve"
	"mralloc/internal/transport"
)

// Policy names an admission-scheduling policy for multiplexed
// sessions. Each node feeds queued session requests one at a time into
// its protocol state machine (the paper's one-outstanding-request
// hypothesis); the policy decides the order. Whatever the policy, a
// request that has waited past the aging threshold is admitted in
// arrival order, so no session starves.
type Policy string

const (
	// PolicyFIFO admits requests in arrival order (the default).
	PolicyFIFO Policy = "fifo"
	// PolicySSF admits the request with the fewest resources first:
	// better mean latency, tail latency bounded by aging.
	PolicySSF Policy = "ssf"
	// PolicyEDF admits the request with the nearest deadline first
	// (see AcquireOpts.Deadline); requests without deadlines go last,
	// in arrival order.
	PolicyEDF Policy = "edf"
)

// Errors a cluster's acquires can return, beyond context errors.
// Compare with errors.Is.
var (
	// ErrClosed: the cluster was closed while the request was queued
	// or outstanding.
	ErrClosed = live.ErrClosed
	// ErrSessionClosed: Acquire on a session after its Close.
	ErrSessionClosed = live.ErrSessionClosed
	// ErrSessionBusy: a session already has an Acquire in flight; open
	// more sessions for more concurrency.
	ErrSessionBusy = live.ErrSessionBusy
)

// ClusterConfig sizes an in-process lock-manager cluster.
type ClusterConfig struct {
	// Nodes is the number of participants (each typically fronting one
	// shard, worker or tenant of the embedding application).
	Nodes int
	// Resources is the size M of the lockable universe.
	Resources int
	// Algorithm must be CounterLoan (default) or CounterNoLoan; the
	// baselines exist for simulation comparisons, not production use.
	Algorithm Algorithm
	// LoanThreshold overrides the loan trigger (default 1): a waiting
	// node missing at most this many resources asks to borrow them.
	LoanThreshold int
	// Latency, when positive, delays every message — useful to make
	// protocol behaviour visible in demos and tests. In-process
	// clusters only.
	Latency time.Duration

	// Policy orders each node's admission queue when concurrent
	// sessions multiplex onto it (default PolicyFIFO).
	Policy Policy
	// AgingThreshold is the wait after which a queued request is
	// admitted in arrival order regardless of policy — the starvation
	// bound. Zero selects a sane default (500ms).
	AgingThreshold time.Duration

	// Peers switches the cluster to multi-process mode: Peers[i] is the
	// TCP address of the process hosting node i, and this process runs
	// the nodes listed in Local, exchanging protocol messages over the
	// wire (internal/wire binary codec, length-prefixed frames). Every
	// participating process must use the same Nodes, Resources,
	// Algorithm and Peers, and the Local sets must partition the nodes.
	// cmd/mrallocd is a ready-made daemon around exactly this mode.
	Peers []string
	// Local lists the node ids hosted by this process (required with
	// Peers). Acquire works only for local nodes.
	Local []int
	// Listen is this process's bind address. Empty defaults to
	// Peers[Local[0]]; set it when the advertised address differs from
	// the bindable one (e.g. listening on :port behind a hostname).
	Listen string
}

// Cluster is a running in-process multi-resource lock manager. All
// methods are safe for concurrent use.
type Cluster struct {
	inner *live.Cluster
}

// LoanStats aggregates the loan mechanism's activity across nodes: how
// many loans were requested, granted, and bounced back (failed). All
// zeros under CounterNoLoan.
type LoanStats struct {
	Asked, Granted, Returned int
}

// NewCluster starts a cluster of protocol nodes.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	opt, ok := coreOptions(cfg.Algorithm)
	if !ok {
		return nil, fmt.Errorf("mralloc: algorithm %q not supported for live clusters", cfg.Algorithm)
	}
	if cfg.LoanThreshold > 0 {
		opt.Loan = true
		opt.LoanThreshold = cfg.LoanThreshold
	}
	policy, err := serve.ParsePolicy(string(cfg.Policy))
	if err != nil {
		return nil, fmt.Errorf("mralloc: %w", err)
	}
	lcfg := live.Config{
		Nodes:     cfg.Nodes,
		Resources: cfg.Resources,
		Latency:   cfg.Latency,
		Policy:    policy,
		Aging:     cfg.AgingThreshold,
	}
	if len(cfg.Peers) > 0 {
		if len(cfg.Peers) != cfg.Nodes {
			return nil, fmt.Errorf("mralloc: %d peer addresses for %d nodes", len(cfg.Peers), cfg.Nodes)
		}
		if len(cfg.Local) == 0 {
			return nil, fmt.Errorf("mralloc: multi-process mode needs Local node ids")
		}
		if cfg.Latency > 0 {
			return nil, fmt.Errorf("mralloc: Latency applies to in-process clusters only")
		}
		listen := cfg.Listen
		if listen == "" {
			if l := cfg.Local[0]; l >= 0 && l < len(cfg.Peers) {
				listen = cfg.Peers[l]
			}
		}
		tr, err := transport.ListenTCP(listen, cfg.Nodes, cfg.Local...)
		if err != nil {
			return nil, err
		}
		if err := tr.Connect(cfg.Peers); err != nil {
			tr.Close()
			return nil, err
		}
		lcfg.Transport = tr
		lcfg.Local = cfg.Local
	}
	inner, err := live.New(lcfg, core.NewFactory(opt))
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// LoanStats snapshots the loan mechanism's aggregate activity. Each
// node's counters are read inside its own event loop, so the snapshot
// is race-free (though nodes are sampled one after another).
func (c *Cluster) LoanStats() LoanStats {
	var s LoanStats
	for id := 0; id < c.inner.N(); id++ {
		c.inner.Inspect(id, func(nd alg.Node) {
			cs := nd.(*core.Node).Counters()
			s.Asked += cs.LoanAsks
			s.Granted += cs.LoansGranted
			s.Returned += cs.LoanReturns
		})
	}
	return s
}

// Acquire blocks until node holds exclusive access to every listed
// resource, then returns a release function (call it exactly once; it
// is idempotent). Deadlock cannot occur regardless of how callers
// overlap their resource sets — that is the algorithm's job. If ctx
// ends first, the eventual grant is released automatically.
//
// Acquire is the one-session convenience form: any number of
// concurrent Acquires may target one node; they queue in the node's
// admission scheduler and enter the protocol one at a time under the
// cluster's Policy. Long-lived clients should hold a Session instead.
func (c *Cluster) Acquire(ctx context.Context, node int, resources ...int) (func(), error) {
	return c.inner.Acquire(ctx, node, resources...)
}

// AcquireOpts parameterizes Session.AcquireWith.
type AcquireOpts struct {
	// Resources lists the resource identifiers to lock, all-or-nothing.
	Resources []int
	// Deadline, when non-zero, is the instant the caller wants
	// admission by; it orders the queue under PolicyEDF. It does not
	// abort a late request — use the context for timeouts (whose
	// deadline, if any, is used when this field is zero).
	Deadline time.Time
}

// Session is one client's serialized stream of acquisitions on a node.
// A node serves any number of concurrent sessions: their requests
// queue in its admission scheduler and enter the allocation protocol
// one at a time under the cluster's Policy, so "users" scale
// independently of protocol nodes. A session itself admits one
// Acquire at a time (ErrSessionBusy otherwise).
type Session struct {
	inner *live.Session
}

// NewSession opens a session on node (which must be hosted by this
// process in multi-process mode). Sessions are cheap: open one per
// logical client, not one per cluster.
func (c *Cluster) NewSession(node int) (*Session, error) {
	s, err := c.inner.NewSession(node)
	if err != nil {
		return nil, err
	}
	return &Session{inner: s}, nil
}

// Acquire blocks until the session holds every listed resource, then
// returns the release function (call it exactly once; idempotent).
// If ctx ends first the request is withdrawn — or, when the protocol
// has already committed the grant, handed straight back — and ctx's
// error returned.
func (s *Session) Acquire(ctx context.Context, resources ...int) (func(), error) {
	return s.inner.Acquire(ctx, serve.AcquireOpts{Resources: resources})
}

// AcquireWith is Acquire with explicit options (deadline-aware
// scheduling under PolicyEDF).
func (s *Session) AcquireWith(ctx context.Context, opts AcquireOpts) (func(), error) {
	return s.inner.Acquire(ctx, serve.AcquireOpts{Resources: opts.Resources, Deadline: opts.Deadline})
}

// Grants reports how many acquisitions the session has completed.
func (s *Session) Grants() int64 { return s.inner.Grants() }

// Close invalidates the session. It does not interrupt an Acquire in
// flight (cancel its context for that) nor revoke a held grant.
func (s *Session) Close() { s.inner.Close() }

// Stats snapshots protocol traffic by message kind.
func (c *Cluster) Stats() map[string]int64 { return c.inner.Stats() }

// N reports the number of nodes.
func (c *Cluster) N() int { return c.inner.N() }

// M reports the number of resources.
func (c *Cluster) M() int { return c.inner.M() }

// Close shuts the cluster down. Outstanding Acquire calls fail.
func (c *Cluster) Close() { c.inner.Close() }
