package mralloc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mralloc/internal/alg"
	"mralloc/internal/core"
	"mralloc/internal/live"
	"mralloc/internal/serve"
	"mralloc/internal/transport"
)

// Policy names an admission-scheduling policy for multiplexed
// sessions. Each node feeds queued session requests one at a time into
// its protocol state machine (the paper's one-outstanding-request
// hypothesis); the policy decides the order. Whatever the policy, a
// request that has waited past the aging threshold is admitted in
// arrival order, so no session starves.
type Policy string

const (
	// PolicyFIFO admits requests in arrival order (the default).
	PolicyFIFO Policy = "fifo"
	// PolicySSF admits the request with the fewest resources first:
	// better mean latency, tail latency bounded by aging.
	PolicySSF Policy = "ssf"
	// PolicyEDF admits the request with the nearest deadline first
	// (see AcquireOpts.Deadline); requests without deadlines go last,
	// in arrival order.
	PolicyEDF Policy = "edf"
	// PolicyAdaptive closes the loop on observed load: each node tracks
	// EWMAs of queue depth, grant latency and slot occupancy, orders the
	// queue EDF when calm and smallest-first under pressure, and
	// self-tunes an admission bound (Little's law against the
	// WithAdmitTarget latency target) past which a multi-process
	// deployment's client port sheds arrivals early instead of queueing
	// them beyond the saturation knee.
	PolicyAdaptive Policy = "adaptive"
)

// Errors a cluster's acquires can return, beyond context errors.
// Compare with errors.Is.
var (
	// ErrClosed: the cluster was closed while the request was queued
	// or outstanding.
	ErrClosed = live.ErrClosed
	// ErrSessionClosed: Acquire on a session after its Close.
	ErrSessionClosed = live.ErrSessionClosed
	// ErrSessionBusy: a session already has an Acquire in flight; open
	// more sessions for more concurrency.
	ErrSessionBusy = live.ErrSessionBusy
)

// ClusterConfig sizes an in-process lock-manager cluster.
type ClusterConfig struct {
	// Nodes is the number of participants (each typically fronting one
	// shard, worker or tenant of the embedding application).
	Nodes int
	// Resources is the size M of the lockable universe.
	Resources int
	// Algorithm must be CounterLoan (default) or CounterNoLoan; the
	// baselines exist for simulation comparisons, not production use.
	Algorithm Algorithm
	// LoanThreshold overrides the loan trigger (default 1): a waiting
	// node missing at most this many resources asks to borrow them.
	LoanThreshold int
	// Latency, when positive, delays every message — useful to make
	// protocol behaviour visible in demos and tests. In-process
	// clusters only.
	Latency time.Duration

	// Policy orders each node's admission queue when concurrent
	// sessions multiplex onto it (default PolicyFIFO).
	//
	// Deprecated: pass WithPolicy to NewCluster instead; the option
	// wins when both are given. Kept so existing callers build.
	Policy Policy
	// AgingThreshold is the wait after which a queued request is
	// admitted in arrival order regardless of policy — the starvation
	// bound. Zero selects a sane default (500ms).
	//
	// Deprecated: pass WithAging to NewCluster instead; the option
	// wins when both are given. Kept so existing callers build.
	AgingThreshold time.Duration

	// Peers switches the cluster to multi-process mode: Peers[i] is the
	// TCP address of the process hosting node i, and this process runs
	// the nodes listed in Local, exchanging protocol messages over the
	// wire (internal/wire binary codec, length-prefixed frames). Every
	// participating process must use the same Nodes, Resources,
	// Algorithm and Peers, and the Local sets must partition the nodes.
	// cmd/mrallocd is a ready-made daemon around exactly this mode.
	Peers []string
	// Local lists the node ids hosted by this process (required with
	// Peers). Acquire works only for local nodes.
	Local []int
	// Listen is this process's bind address. Empty defaults to
	// Peers[Local[0]]; set it when the advertised address differs from
	// the bindable one (e.g. listening on :port behind a hostname).
	Listen string
}

// WireConfig tunes the peer wire path of a multi-process cluster —
// the knobs each connection's hello exchange then negotiates down to
// what both ends support. The zero value selects the defaults (delta
// off, vectored writes, hello on, default receive window). In-process
// clusters have no wire and ignore it.
type WireConfig struct {
	// Delta delta-encodes token state against the per-peer baseline.
	Delta bool
	// NoVectored disables writev egress for batched frames.
	NoVectored bool
	// FlushDelay is the egress micro-delay before each flush;
	// FlushDelayMax above it enables the adaptive scheduler.
	FlushDelay    time.Duration
	FlushDelayMax time.Duration
	// Window is the receive window announced to peers, in bytes: how
	// much a peer may have in flight before waiting for credit. Zero
	// selects the transport default, negative disables crediting.
	Window int64
	// NoHello suppresses the connection hello on dialed links,
	// mimicking a pre-negotiation build (testing/interop only).
	NoHello bool
}

// Option customizes NewCluster beyond the core shape in ClusterConfig.
type Option func(*clusterOptions)

type clusterOptions struct {
	policy      Policy
	havePolicy  bool
	aging       time.Duration
	haveAging   bool
	wire        WireConfig
	haveWire    bool
	window      int64
	haveWindow  bool
	admitTarget time.Duration
}

// WithPolicy selects the admission-scheduling policy (PolicyFIFO,
// PolicySSF, PolicyEDF, PolicyAdaptive), overriding
// ClusterConfig.Policy.
func WithPolicy(p Policy) Option {
	return func(o *clusterOptions) { o.policy = p; o.havePolicy = true }
}

// WithAging sets the starvation bound: the wait after which a queued
// request is admitted in arrival order regardless of policy. Overrides
// ClusterConfig.AgingThreshold.
func WithAging(d time.Duration) Option {
	return func(o *clusterOptions) { o.aging = d; o.haveAging = true }
}

// WithWire tunes the peer wire path of a multi-process cluster; see
// WireConfig. Later options override earlier ones field-wise only for
// WithWindow — a second WithWire replaces the whole config.
func WithWire(w WireConfig) Option {
	return func(o *clusterOptions) { o.wire = w; o.haveWire = true }
}

// WithWindow sets just the announced receive window (bytes a peer may
// have in flight before waiting for credit) on top of whatever WithWire
// configured: zero the default, negative disables crediting.
func WithWindow(bytes int64) Option {
	return func(o *clusterOptions) { o.window = bytes; o.haveWindow = true }
}

// WithAdmitTarget sets PolicyAdaptive's grant-latency target: the
// sojourn the self-tuned admission bound aims to keep queued requests
// under (zero selects the built-in default). Other policies ignore it.
func WithAdmitTarget(d time.Duration) Option {
	return func(o *clusterOptions) { o.admitTarget = d }
}

// Cluster is a running in-process multi-resource lock manager. All
// methods are safe for concurrent use.
type Cluster struct {
	inner *live.Cluster
}

// LoanStats aggregates the loan mechanism's activity across nodes: how
// many loans were requested, granted, and bounced back (failed). All
// zeros under CounterNoLoan.
type LoanStats struct {
	Asked, Granted, Returned int
}

// NewCluster starts a cluster of protocol nodes. ClusterConfig gives
// the core shape (nodes, resources, algorithm, deployment); everything
// else — admission policy, aging, wire tuning — is a functional option
// (WithPolicy, WithAging, WithWire, WithWindow). The deprecated
// ClusterConfig tuning fields still work and options override them, so
// pre-option callers build and behave unchanged.
func NewCluster(cfg ClusterConfig, opts ...Option) (*Cluster, error) {
	var o clusterOptions
	for _, opt := range opts {
		opt(&o)
	}
	copt, ok := coreOptions(cfg.Algorithm)
	if !ok {
		return nil, fmt.Errorf("mralloc: algorithm %q not supported for live clusters", cfg.Algorithm)
	}
	if cfg.LoanThreshold > 0 {
		copt.Loan = true
		copt.LoanThreshold = cfg.LoanThreshold
	}
	pol := cfg.Policy
	if o.havePolicy {
		pol = o.policy
	}
	policy, err := serve.ParsePolicy(string(pol))
	if err != nil {
		return nil, fmt.Errorf("mralloc: %w", err)
	}
	aging := cfg.AgingThreshold
	if o.haveAging {
		aging = o.aging
	}
	wire := transport.WireOptions{
		Delta:         o.wire.Delta,
		NoVectored:    o.wire.NoVectored,
		FlushDelay:    o.wire.FlushDelay,
		FlushDelayMax: o.wire.FlushDelayMax,
		Window:        o.wire.Window,
		NoHello:       o.wire.NoHello,
	}
	if o.haveWindow {
		wire.Window = o.window
	}
	if (o.haveWire || o.haveWindow) && len(cfg.Peers) == 0 {
		return nil, fmt.Errorf("mralloc: wire options apply to multi-process clusters only")
	}
	lcfg := live.Config{
		Nodes:       cfg.Nodes,
		Resources:   cfg.Resources,
		Latency:     cfg.Latency,
		Policy:      policy,
		Aging:       aging,
		AdmitTarget: o.admitTarget,
		Wire:        wire,
	}
	if len(cfg.Peers) > 0 {
		if len(cfg.Peers) != cfg.Nodes {
			return nil, fmt.Errorf("mralloc: %d peer addresses for %d nodes", len(cfg.Peers), cfg.Nodes)
		}
		if len(cfg.Local) == 0 {
			return nil, fmt.Errorf("mralloc: multi-process mode needs Local node ids")
		}
		if cfg.Latency > 0 {
			return nil, fmt.Errorf("mralloc: Latency applies to in-process clusters only")
		}
		listen := cfg.Listen
		if listen == "" {
			if l := cfg.Local[0]; l >= 0 && l < len(cfg.Peers) {
				listen = cfg.Peers[l]
			}
		}
		tr, err := transport.ListenTCP(listen, cfg.Nodes, cfg.Local...)
		if err != nil {
			return nil, err
		}
		if err := tr.Connect(cfg.Peers); err != nil {
			tr.Close()
			return nil, err
		}
		lcfg.Transport = tr
		lcfg.Local = cfg.Local
	}
	inner, err := live.New(lcfg, core.NewFactory(copt))
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// LoanStats snapshots the loan mechanism's aggregate activity. Each
// node's counters are read inside its own event loop, so the snapshot
// is race-free (though nodes are sampled one after another).
func (c *Cluster) LoanStats() LoanStats {
	var s LoanStats
	for id := 0; id < c.inner.N(); id++ {
		c.inner.Inspect(id, func(nd alg.Node) {
			cs := nd.(*core.Node).Counters()
			s.Asked += cs.LoanAsks
			s.Granted += cs.LoansGranted
			s.Returned += cs.LoanReturns
		})
	}
	return s
}

// Acquire blocks until node holds exclusive access to every listed
// resource, then returns a release function (call it exactly once; it
// is idempotent). Deadlock cannot occur regardless of how callers
// overlap their resource sets — that is the algorithm's job. If ctx
// ends first, the eventual grant is released automatically.
//
// Acquire is the one-session convenience form: any number of
// concurrent Acquires may target one node; they queue in the node's
// admission scheduler and enter the protocol one at a time under the
// cluster's Policy. Long-lived clients should hold a Session instead.
func (c *Cluster) Acquire(ctx context.Context, node int, resources ...int) (func(), error) {
	return c.inner.Acquire(ctx, node, resources...)
}

// AcquireAll acquires every listed set in one call, all-or-nothing:
// either the returned release function hands back every set (call it
// exactly once; idempotent), or nothing stays held and the error names
// the set that failed.
//
// The protocol admits one critical section per node at a time (the
// paper's hypothesis 4), so the sets are spread over distinct hosted
// nodes — set i lands on the i-th hosted node, acquired in ascending
// node order so concurrent batches cannot deadlock one another — and a
// batch of more sets than this process hosts nodes is refused. The
// client wire protocol carries the same shape in one frame
// (serve.Client.AcquireAll).
func (c *Cluster) AcquireAll(ctx context.Context, sets ...[]int) (func(), error) {
	if len(sets) == 0 {
		return func() {}, nil
	}
	var hosted []int
	for id := 0; id < c.inner.N(); id++ {
		if c.inner.Local(id) {
			hosted = append(hosted, id)
		}
	}
	if len(sets) > len(hosted) {
		return nil, fmt.Errorf(
			"mralloc: batch of %d sets exceeds the %d hosted nodes (one critical section per node)",
			len(sets), len(hosted))
	}
	releases := make([]func(), 0, len(sets))
	unwind := func() {
		for i := len(releases) - 1; i >= 0; i-- {
			releases[i]()
		}
	}
	for i, set := range sets {
		release, err := c.inner.Acquire(ctx, hosted[i], set...)
		if err != nil {
			unwind()
			return nil, fmt.Errorf("mralloc: set %d: %w", i, err)
		}
		releases = append(releases, release)
	}
	var once sync.Once
	return func() { once.Do(unwind) }, nil
}

// AcquireOpts parameterizes Session.AcquireWith.
type AcquireOpts struct {
	// Resources lists the resource identifiers to lock, all-or-nothing.
	Resources []int
	// Deadline, when non-zero, is the instant the caller wants
	// admission by; it orders the queue under PolicyEDF. It does not
	// abort a late request — use the context for timeouts (whose
	// deadline, if any, is used when this field is zero).
	Deadline time.Time
}

// Session is one client's serialized stream of acquisitions on a node.
// A node serves any number of concurrent sessions: their requests
// queue in its admission scheduler and enter the allocation protocol
// one at a time under the cluster's Policy, so "users" scale
// independently of protocol nodes. A session itself admits one
// Acquire at a time (ErrSessionBusy otherwise).
type Session struct {
	inner *live.Session
}

// NewSession opens a session on node (which must be hosted by this
// process in multi-process mode). Sessions are cheap: open one per
// logical client, not one per cluster.
func (c *Cluster) NewSession(node int) (*Session, error) {
	s, err := c.inner.NewSession(node)
	if err != nil {
		return nil, err
	}
	return &Session{inner: s}, nil
}

// Acquire blocks until the session holds every listed resource, then
// returns the release function (call it exactly once; idempotent).
// If ctx ends first the request is withdrawn — or, when the protocol
// has already committed the grant, handed straight back — and ctx's
// error returned.
func (s *Session) Acquire(ctx context.Context, resources ...int) (func(), error) {
	return s.inner.Acquire(ctx, serve.AcquireOpts{Resources: resources})
}

// AcquireWith is Acquire with explicit options (deadline-aware
// scheduling under PolicyEDF).
func (s *Session) AcquireWith(ctx context.Context, opts AcquireOpts) (func(), error) {
	return s.inner.Acquire(ctx, serve.AcquireOpts{Resources: opts.Resources, Deadline: opts.Deadline})
}

// Grants reports how many acquisitions the session has completed.
func (s *Session) Grants() int64 { return s.inner.Grants() }

// Close invalidates the session. It does not interrupt an Acquire in
// flight (cancel its context for that) nor revoke a held grant.
func (s *Session) Close() { s.inner.Close() }

// Stats snapshots protocol traffic by message kind.
func (c *Cluster) Stats() map[string]int64 { return c.inner.Stats() }

// N reports the number of nodes.
func (c *Cluster) N() int { return c.inner.N() }

// M reports the number of resources.
func (c *Cluster) M() int { return c.inner.M() }

// Close shuts the cluster down. Outstanding Acquire calls fail.
func (c *Cluster) Close() { c.inner.Close() }
