// Benchmarks regenerating every table and figure of the paper's
// evaluation (§5) plus the DESIGN.md extensions and ablations. Each
// benchmark iteration runs the full experiment at a reduced scale and
// reports the headline metric alongside ns/op, so
//
//	go test -bench=. -benchmem
//
// doubles as a one-command reproduction smoke run. cmd/paperfig and
// cmd/sweep produce the full-scale numbers recorded in EXPERIMENTS.md.
package mralloc

import (
	"context"
	"testing"

	"mralloc/internal/experiments"
	"mralloc/internal/sim"
)

// benchScale keeps a single iteration around a third of a second.
var benchScale = experiments.Scale{
	Warmup:  100 * sim.Millisecond,
	Horizon: 1 * sim.Second,
	Seeds:   1,
}

// reportCell attaches experiment metrics to the benchmark output.
func reportCell(b *testing.B, c experiments.Cell) {
	b.ReportMetric(100*c.UseRate, "use%")
	b.ReportMetric(c.WaitMean, "wait_ms")
	b.ReportMetric(c.MsgPerGrant, "msg/cs")
}

// benchFigure runs a whole figure per iteration.
func benchFigure(b *testing.B, run func(experiments.Scale) (experiments.Table, error)) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := run(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5a_UseRate_MediumLoad(b *testing.B) {
	benchFigure(b, func(sc experiments.Scale) (experiments.Table, error) {
		return experiments.Figure5(experiments.MediumLoad, sc)
	})
}

func BenchmarkFig5b_UseRate_HighLoad(b *testing.B) {
	benchFigure(b, func(sc experiments.Scale) (experiments.Table, error) {
		return experiments.Figure5(experiments.HighLoad, sc)
	})
}

func BenchmarkFig6a_Waiting_MediumLoad(b *testing.B) {
	benchFigure(b, func(sc experiments.Scale) (experiments.Table, error) {
		return experiments.Figure6(experiments.MediumLoad, sc)
	})
}

func BenchmarkFig6b_Waiting_HighLoad(b *testing.B) {
	benchFigure(b, func(sc experiments.Scale) (experiments.Table, error) {
		return experiments.Figure6(experiments.HighLoad, sc)
	})
}

func BenchmarkFig7a_WaitingBySize_MediumLoad(b *testing.B) {
	benchFigure(b, func(sc experiments.Scale) (experiments.Table, error) {
		return experiments.Figure7(experiments.MediumLoad, sc)
	})
}

func BenchmarkFig7b_WaitingBySize_HighLoad(b *testing.B) {
	benchFigure(b, func(sc experiments.Scale) (experiments.Table, error) {
		return experiments.Figure7(experiments.HighLoad, sc)
	})
}

func BenchmarkAblationLoanThreshold(b *testing.B) {
	benchFigure(b, experiments.ThresholdSweep)
}

func BenchmarkAblationMarkFunction(b *testing.B) {
	benchFigure(b, experiments.MarkSweep)
}

func BenchmarkAblationOptimizations(b *testing.B) {
	benchFigure(b, experiments.OptsSweep)
}

func BenchmarkExtensionCloudTopology(b *testing.B) {
	benchFigure(b, experiments.CloudExperiment)
}

// BenchmarkAlgorithm measures one simulated second of each competitor
// under the paper's high-load φ=16 point — the per-algorithm cost of
// the simulation itself plus the experiment metrics.
func BenchmarkAlgorithm(b *testing.B) {
	for _, a := range []experiments.Algorithm{
		experiments.Incremental,
		experiments.Bouabdallah,
		experiments.WithoutLoan,
		experiments.WithLoan,
		experiments.SharedMem,
	} {
		a := a
		b.Run(string(a), func(b *testing.B) {
			b.ReportAllocs()
			var last experiments.Cell
			for i := 0; i < b.N; i++ {
				cell, err := experiments.RunCell(experiments.Point{
					Alg: a, Phi: 16, Load: experiments.HighLoad,
				}, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				last = cell
			}
			reportCell(b, last)
		})
	}
}

// BenchmarkSimulatorThroughput measures raw kernel speed: simulator
// events per wall-clock second on the heaviest workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(experiments.Point{
			Alg: experiments.WithLoan, Phi: 80, Load: experiments.HighLoad, Seed: 1,
		}, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}

func BenchmarkMessageComplexity(b *testing.B) {
	benchFigure(b, experiments.MessageComplexity)
}

func BenchmarkFairness(b *testing.B) {
	benchFigure(b, experiments.FairnessSweep)
}

// BenchmarkLiveClusterAcquire measures end-to-end Acquire/Release
// latency on the goroutine runtime with mild contention.
func BenchmarkLiveClusterAcquire(b *testing.B) {
	c, err := NewCluster(ClusterConfig{Nodes: 4, Resources: 16})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		release, err := c.Acquire(ctx, i%4, i%16, (i+5)%16)
		if err != nil {
			b.Fatal(err)
		}
		release()
	}
}

func BenchmarkExtensionHotspot(b *testing.B) {
	benchFigure(b, experiments.HotspotSweep)
}
